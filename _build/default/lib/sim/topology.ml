type t = {
  engine : Engine.t;
  mutable switches : Node.t array;
  mutable n : int;
  links : (int * int, Link.t) Hashtbl.t;  (* (src, dst) -> link *)
  adj : (int, int list ref) Hashtbl.t;  (* src -> neighbours *)
}

let create ~engine () =
  { engine; switches = [||]; n = 0; links = Hashtbl.create 16; adj = Hashtbl.create 16 }

let add_switch t ~name =
  let id = t.n in
  let node = Node.create ~name in
  if id = Array.length t.switches then begin
    let cap = Stdlib.max 4 (2 * id) in
    let bigger = Array.make cap node in
    Array.blit t.switches 0 bigger 0 id;
    t.switches <- bigger
  end;
  t.switches.(id) <- node;
  t.n <- t.n + 1;
  Hashtbl.replace t.adj id (ref []);
  id

let n_switches t = t.n

let switch t i =
  if i < 0 || i >= t.n then invalid_arg "Topology.switch";
  t.switches.(i)

let link t ~src ~dst = Hashtbl.find_opt t.links (src, dst)

let connect t ~src ~dst ~rate_bps ?(prop_delay = 0.) ~qdisc () =
  if src = dst then invalid_arg "Topology.connect: self loop";
  if Hashtbl.mem t.links (src, dst) then
    invalid_arg "Topology.connect: duplicate link";
  let l =
    Link.create ~engine:t.engine ~rate_bps ~prop_delay ~qdisc
      ~name:
        (Printf.sprintf "%s->%s"
           (Node.name (switch t src))
           (Node.name (switch t dst)))
      ()
  in
  let dst_node = switch t dst in
  Link.set_receiver l (fun pkt -> Node.receive dst_node pkt);
  Hashtbl.replace t.links (src, dst) l;
  let neighbours = Hashtbl.find t.adj src in
  neighbours := dst :: !neighbours

let connect_duplex t ~a ~b ~rate_bps ?(prop_delay = 0.) ~qdisc_of () =
  connect t ~src:a ~dst:b ~rate_bps ~prop_delay ~qdisc:(qdisc_of ()) ();
  connect t ~src:b ~dst:a ~rate_bps ~prop_delay ~qdisc:(qdisc_of ()) ()

(* Unit-weight Dijkstra = breadth-first search; neighbours are visited in
   ascending id order so routes are deterministic. *)
let shortest_path t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Topology.shortest_path";
  if src = dst then Some [ src ]
  else begin
    let prev = Array.make t.n (-1) in
    let seen = Array.make t.n false in
    seen.(src) <- true;
    let frontier = Queue.create () in
    Queue.push src frontier;
    let found = ref false in
    while (not !found) && not (Queue.is_empty frontier) do
      let u = Queue.pop frontier in
      let neighbours = List.sort compare !(Hashtbl.find t.adj u) in
      List.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            prev.(v) <- u;
            if v = dst then found := true;
            Queue.push v frontier
          end)
        neighbours
    done;
    if not seen.(dst) then None
    else begin
      let rec walk v acc = if v = src then v :: acc else walk prev.(v) (v :: acc) in
      Some (walk dst [])
    end
  end

let install_flow t ~flow ~src ~dst ~sink =
  match shortest_path t ~src ~dst with
  | None ->
      failwith
        (Printf.sprintf "Topology.install_flow: switch %d unreachable from %d"
           dst src)
  | Some path ->
      let rec wire = function
        | [ last ] -> Node.add_route (switch t last) ~flow (Node.Deliver sink)
        | hop :: (next :: _ as rest) ->
            let l = Hashtbl.find t.links (hop, next) in
            Node.add_route (switch t hop) ~flow (Node.Forward l);
            wire rest
        | [] -> assert false
      in
      wire path;
      path

let inject t ~at_switch pkt = Node.receive (switch t at_switch) pkt

let iter_links t f = Hashtbl.iter (fun (src, dst) l -> f ~src ~dst l) t.links

let total_dropped t =
  Hashtbl.fold (fun _ l acc -> acc + Link.dropped l) t.links 0
