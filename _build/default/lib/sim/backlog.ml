open Ispn_util

type t = { samples : Fvec.t; stats : Stats.t }

let watch ~engine ~link ?(interval = 0.01) () =
  assert (interval > 0.);
  let t = { samples = Fvec.create (); stats = Stats.create () } in
  let qdisc = Link.qdisc link in
  let rec tick () =
    let depth = float_of_int (qdisc.Qdisc.length ()) in
    Fvec.push t.samples depth;
    Stats.add t.stats depth;
    ignore (Engine.schedule_after engine ~delay:interval tick)
  in
  ignore (Engine.schedule_after engine ~delay:interval tick);
  t

let samples t = t.samples
let count t = Fvec.length t.samples
let mean t = Stats.mean t.stats
let max t = if count t = 0 then 0. else Stats.max t.stats
let percentile t p = Quantile.percentile t.samples p

let histogram ?(bins = 20) t =
  let hi = Stdlib.max 1. (max t +. 1.) in
  Histogram.of_values ~lo:0. ~hi ~bins (Fvec.to_array t.samples)
