type port = Forward of Link.t | Deliver of (Packet.t -> unit)

type t = {
  node_name : string;
  routes : (int, port) Hashtbl.t;
  mutable received : int;
}

let create ~name = { node_name = name; routes = Hashtbl.create 32; received = 0 }
let name t = t.node_name
let add_route t ~flow port = Hashtbl.replace t.routes flow port

let receive t pkt =
  t.received <- t.received + 1;
  pkt.Packet.hops <- pkt.Packet.hops + 1;
  match Hashtbl.find_opt t.routes pkt.Packet.flow with
  | Some (Forward link) -> Link.send link pkt
  | Some (Deliver f) -> f pkt
  | None ->
      failwith
        (Printf.sprintf "Node %s: no route for flow %d" t.node_name
           pkt.Packet.flow)

let received t = t.received
