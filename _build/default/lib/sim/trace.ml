type t = {
  capacity : int;
  buf : (float * string) array;
  mutable len : int;
  mutable next : int;
}

let create ?(capacity = 4096) () =
  assert (capacity > 0);
  { capacity; buf = Array.make capacity (0., ""); len = 0; next = 0 }

let record t ~time msg =
  t.buf.(t.next) <- (time, msg);
  t.next <- (t.next + 1) mod t.capacity;
  if t.len < t.capacity then t.len <- t.len + 1

let entries t =
  let start =
    if t.len < t.capacity then 0 else t.next
  in
  List.init t.len (fun i -> t.buf.((start + i) mod t.capacity))

let length t = t.len

let clear t =
  t.len <- 0;
  t.next <- 0

let pp ppf t =
  List.iter
    (fun (time, msg) -> Format.fprintf ppf "%.6f %s@." time msg)
    (entries t)
