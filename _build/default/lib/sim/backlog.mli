(** Periodic queue-depth sampling.

    Delay percentiles say how packets fared; backlog samples say how close a
    200-packet buffer came to overflowing — the quantity that decides the
    paper's buffer provisioning and the datagram drop rate.  A watcher
    samples one link's queue length on a fixed period for the lifetime of
    the run. *)

type t

val watch : engine:Engine.t -> link:Link.t -> ?interval:float -> unit -> t
(** Start sampling [link]'s qdisc length every [interval] seconds (default
    0.01 — ten packet times at the paper's rates). *)

val samples : t -> Ispn_util.Fvec.t
(** Queue lengths in packets, one per sample, in time order. *)

val count : t -> int
val mean : t -> float
val max : t -> float
val percentile : t -> float -> float
(** Raises [Invalid_argument] when nothing has been sampled. *)

val histogram : ?bins:int -> t -> Ispn_util.Histogram.t
(** Distribution of queue depth from 0 to the observed maximum. *)
