(** Arbitrary topologies with shortest-path routing.

    The paper's experiments use the Figure-1 chain ({!Network.chain}), but a
    downstream user of the library wants meshes, stars and dumbbells.  This
    module builds a directed graph of switches and links, computes
    fewest-hops routes (Dijkstra with unit weights; ties broken toward the
    lower switch id, deterministically), and installs per-flow routes on the
    underlying {!Node} tables.

    Routing is static, computed at flow-installation time — consistent with
    the paper, which leaves routing out of scope. *)

type t

val create : engine:Engine.t -> unit -> t

val add_switch : t -> name:string -> int
(** Returns the new switch's id (dense, starting at 0). *)

val connect :
  t ->
  src:int ->
  dst:int ->
  rate_bps:float ->
  ?prop_delay:float ->
  qdisc:Qdisc.t ->
  unit ->
  unit
(** Add a directed link.  Raises [Invalid_argument] if one already exists
    from [src] to [dst]. *)

val connect_duplex :
  t ->
  a:int ->
  b:int ->
  rate_bps:float ->
  ?prop_delay:float ->
  qdisc_of:(unit -> Qdisc.t) ->
  unit ->
  unit
(** Two directed links with independently constructed qdiscs. *)

val n_switches : t -> int
val switch : t -> int -> Node.t
val link : t -> src:int -> dst:int -> Link.t option

val shortest_path : t -> src:int -> dst:int -> int list option
(** Switch ids from [src] to [dst] inclusive; [None] if unreachable;
    [Some [src]] when [src = dst]. *)

val install_flow :
  t -> flow:int -> src:int -> dst:int -> sink:(Packet.t -> unit) -> int list
(** Route the flow along the shortest path and deliver to [sink] at [dst];
    returns the path.  Raises [Failure] when [dst] is unreachable. *)

val inject : t -> at_switch:int -> Packet.t -> unit

val iter_links : t -> (src:int -> dst:int -> Link.t -> unit) -> unit
val total_dropped : t -> int
