(** Packet switch with static per-flow routing.

    The paper's experiments use fixed paths over a chain of switches
    (Figure 1), so routing is a per-flow lookup table installed at flow
    setup time — the simulator does not model a routing protocol. *)

type port =
  | Forward of Link.t  (** Queue the packet on an output link. *)
  | Deliver of (Packet.t -> unit)  (** Hand to a locally attached host. *)

type t

val create : name:string -> t
val name : t -> string

val add_route : t -> flow:int -> port -> unit
(** Later calls overwrite earlier ones for the same flow. *)

val receive : t -> Packet.t -> unit
(** Increment the packet's hop count and forward it.  Raises [Failure] for a
    flow with no route (a wiring bug, not a runtime condition). *)

val received : t -> int
(** Total packets this switch has handled. *)
