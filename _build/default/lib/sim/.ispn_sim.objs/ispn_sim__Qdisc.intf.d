lib/sim/qdisc.mli: Packet
