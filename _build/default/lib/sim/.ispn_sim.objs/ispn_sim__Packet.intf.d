lib/sim/packet.mli: Format
