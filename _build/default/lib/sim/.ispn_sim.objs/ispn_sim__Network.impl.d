lib/sim/network.ml: Array Engine Link Node Printf
