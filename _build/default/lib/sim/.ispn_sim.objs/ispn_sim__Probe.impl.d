lib/sim/probe.ml: Engine Fvec Ispn_util Node Packet Quantile Stdlib Units
