lib/sim/node.ml: Hashtbl Link Packet Printf
