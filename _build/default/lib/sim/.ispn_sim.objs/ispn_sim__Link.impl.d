lib/sim/link.ml: Engine Ispn_util Logs Packet Qdisc Stdlib
