lib/sim/qdisc.ml: Packet
