lib/sim/packet.ml: Format Ispn_util
