lib/sim/wire.ml: Bytes Float Int32 Packet Printf
