lib/sim/topology.mli: Engine Link Node Packet Qdisc
