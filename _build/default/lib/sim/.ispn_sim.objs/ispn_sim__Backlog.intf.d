lib/sim/backlog.mli: Engine Ispn_util Link
