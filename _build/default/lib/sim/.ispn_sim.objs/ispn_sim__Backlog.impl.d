lib/sim/backlog.ml: Engine Fvec Histogram Ispn_util Link Qdisc Quantile Stats Stdlib
