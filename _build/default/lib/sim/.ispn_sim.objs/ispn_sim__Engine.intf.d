lib/sim/engine.mli:
