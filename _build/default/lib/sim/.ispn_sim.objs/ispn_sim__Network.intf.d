lib/sim/network.mli: Engine Link Node Packet Qdisc
