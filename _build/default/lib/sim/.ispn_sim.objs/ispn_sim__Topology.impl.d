lib/sim/topology.ml: Array Engine Hashtbl Link List Node Printf Queue Stdlib
