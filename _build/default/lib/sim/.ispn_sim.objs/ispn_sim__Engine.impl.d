lib/sim/engine.ml: Ispn_util Printf Stdlib
