lib/sim/wire.mli: Packet
