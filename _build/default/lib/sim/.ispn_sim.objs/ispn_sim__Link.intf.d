lib/sim/link.mli: Engine Ispn_util Packet Qdisc
