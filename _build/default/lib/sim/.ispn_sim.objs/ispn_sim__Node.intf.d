lib/sim/node.mli: Link Packet
