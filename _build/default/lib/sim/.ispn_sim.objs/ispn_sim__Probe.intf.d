lib/sim/probe.mli: Engine Ispn_util Node Packet
