lib/transport/udp_sink.ml: Ispn_sim
