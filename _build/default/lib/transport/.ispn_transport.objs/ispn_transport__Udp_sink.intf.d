lib/transport/udp_sink.mli: Ispn_sim
