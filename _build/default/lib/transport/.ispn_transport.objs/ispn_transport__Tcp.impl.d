lib/transport/tcp.ml: Engine Float Hashtbl Ispn_sim Ispn_util Option Packet Stdlib
