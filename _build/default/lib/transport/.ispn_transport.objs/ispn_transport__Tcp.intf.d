lib/transport/tcp.mli: Ispn_sim
