(** Tahoe-style TCP connection over the simulated network.

    Table 3's workload adds "2 datagram TCP connections" that soak up the
    bandwidth left over by the real-time classes; the paper reports >99%
    total utilization with a ~0.1% datagram drop rate.  This module provides
    a window-based sender with slow start, congestion avoidance, fast
    retransmit on three duplicate acks (Tahoe: window back to one segment),
    exponential-backoff retransmission timeouts with Jacobson/Karels RTT
    estimation, and a cumulative-ack receiver with out-of-order buffering.

    The sender is a greedy "infinite file" source.  Acknowledgments return
    on an uncongested reverse path (a fixed [ack_delay]), consistent with
    the paper's setup where all data traffic flows in one direction. *)

type flavor =
  | Tahoe  (** Loss always collapses the window to one segment. *)
  | Reno
      (** Fast recovery: on three duplicate acks, halve the window, inflate
          it while dupacks arrive, and keep new data flowing instead of
          rewinding (RFC 2581-style; multiple losses in one window still
          fall back to a timeout, as in classic Reno). *)

type config = {
  flavor : flavor;  (** Default [Tahoe] (period-appropriate for 1992). *)
  packet_bits : int;  (** Segment size on the wire (default 1000). *)
  max_window : int;  (** Receiver window in segments (default 64). *)
  init_ssthresh : int;  (** Initial slow-start threshold (default 32). *)
  min_rto : float;  (** RTO floor in seconds (default 0.1). *)
  max_rto : float;  (** RTO ceiling in seconds (default 60.0). *)
  ack_delay : float;  (** Reverse-path latency in seconds (default 1e-3). *)
}

val default_config : config

type t

val create :
  engine:Ispn_sim.Engine.t ->
  flow:int ->
  ?config:config ->
  send:(Ispn_sim.Packet.t -> unit) ->
  unit ->
  t
(** [send] injects a data segment into the network (typically
    [Network.inject]).  Wire the other side with {!receive} as the flow's
    sink before calling {!start}. *)

val receive : t -> Ispn_sim.Packet.t -> unit
(** Deliver a packet that reached the receiving end. *)

val start : t -> unit
(** Open the connection and start transmitting. *)

val stop : t -> unit
(** Freeze the sender (pending timers are disarmed). *)

(** {2 Accounting} *)

val segments_sent : t -> int
(** Segments put on the wire, including retransmissions. *)

val retransmissions : t -> int
val delivered : t -> int
(** Distinct segments delivered in order to the receiving application. *)

val timeouts : t -> int

val fast_recoveries : t -> int
(** Times fast retransmit fired: window halvings under Reno, collapses
    under Tahoe. *)

val cwnd : t -> float
(** Current congestion window in segments. *)

val goodput_bps : t -> elapsed:float -> float
(** Application-level throughput over [elapsed] seconds. *)

val loss_rate : t -> float
(** [retransmissions / segments_sent] — the sender's estimate of the network
    drop rate. *)
