(** Fire-and-forget datagram endpoint.

    Counts deliveries for sources that need no feedback loop (the open-loop
    datagram traffic of the extension experiments).  An optional callback
    lets applications (e.g. play-back clients) observe each packet. *)

type t

val create : ?on_packet:(Ispn_sim.Packet.t -> unit) -> unit -> t
val receive : t -> Ispn_sim.Packet.t -> unit
val received : t -> int
val bits_received : t -> int
