type t = {
  gain : float;
  k : float;
  spike_threshold : float;
  spike_exit : float;
  mutable d : float;
  mutable v : float;
  mutable n : int;
  mutable spike : bool;
}

let create ?(gain = 1. /. 16.) ?(deviation_factor = 4.)
    ?(spike_threshold = 8.) ?(spike_exit = 2.) () =
  assert (gain > 0. && gain <= 1.);
  assert (spike_exit <= spike_threshold);
  {
    gain;
    k = deviation_factor;
    spike_threshold;
    spike_exit;
    d = 0.;
    v = 0.;
    n = 0;
    spike = false;
  }

let observe t x =
  if t.n = 0 then begin
    t.d <- x;
    t.v <- x /. 2.
  end
  else if t.spike then begin
    (* Follow the spike aggressively; leave once delays settle back. *)
    t.d <- (t.d /. 2.) +. (x /. 2.);
    if x <= t.d +. (t.spike_exit *. t.v) then t.spike <- false
  end
  else if x > t.d +. (t.spike_threshold *. Stdlib.max t.v 1e-6) then begin
    t.spike <- true;
    t.d <- x
  end
  else begin
    t.d <- t.d +. (t.gain *. (x -. t.d));
    t.v <- t.v +. (t.gain *. (Float.abs (x -. t.d) -. t.v))
  end;
  t.n <- t.n + 1

let estimate t = if t.n = 0 then 0. else t.d +. (t.k *. t.v)
let count t = t.n
let in_spike t = t.spike
