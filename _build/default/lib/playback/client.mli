(** Play-back point clients (the application taxonomy of Section 2).

    A play-back application buffers arriving data and replays it at a fixed
    offset — the play-back point — behind the source clock.  A packet whose
    network delay exceeds the current play-back point misses its deadline
    and is lost to the application.

    - A {e rigid} client fixes the point once, from the a-priori bound the
      network advertised, and never moves it.
    - An {e adaptive} client re-estimates the point periodically from
      measured delays, gambling that the recent past predicts the near
      future; it achieves a much lower average play-back point (hence
      better interactivity) at the cost of occasional losses when network
      conditions shift — exactly the trade the paper's predicted service is
      designed around. *)

type mode =
  | Rigid of float
      (** Fixed play-back point in seconds (the advertised bound). *)
  | Adaptive of {
      estimator : Estimator.t;
      update_every : int;  (** Re-estimate after this many packets. *)
    }

type t

val create : mode -> t
val rigid : bound:float -> t

val adaptive :
  ?window:int -> ?quantile:float -> ?margin:float -> ?update_every:int ->
  unit -> t
(** Windowed-quantile adaptation (the default {!Delay_estimator});
    [update_every] defaults to 50 packets. *)

val adaptive_vat : ?update_every:int -> unit -> t
(** VAT-style adaptation ({!Vat_estimator} with its defaults). *)

val adaptive_with : estimator:Estimator.t -> ?update_every:int -> unit -> t
(** Any custom estimator. *)

val receive : t -> delay:float -> unit
(** Deliver one packet with the given end-to-end delay. *)

val received : t -> int
val missed : t -> int
(** Packets that arrived after the play-back point. *)

val loss_rate : t -> float
val playback_point : t -> float
(** The point currently in force. *)

val mean_playback_point : t -> float
(** Packet-averaged play-back point over the whole run — the paper's measure
    of the delay an application actually suffers. *)
