(** Sliding-window delay estimation for adaptive play-back clients.

    An adaptive application (Section 2.3) measures the delays of arriving
    packets and moves its play-back point to "the minimal delay that still
    produces a sufficiently low loss rate" — i.e. a high quantile of the
    recently observed delay distribution, plus a safety margin. *)

type t

val create : ?window:int -> ?quantile:float -> ?margin:float -> unit -> t
(** [window] (default 200) is how many recent delays are remembered;
    [quantile] (default 0.99) which point of their distribution is targeted;
    [margin] (default 0) a constant added to the estimate, in seconds. *)

val observe : t -> float -> unit
(** Record one packet's delay (seconds). *)

val count : t -> int
(** Observations recorded so far (not capped by the window). *)

val estimate : t -> float
(** Current play-back point estimate.  With no observations yet this is
    [margin]. *)
