lib/playback/delay_estimator.mli:
