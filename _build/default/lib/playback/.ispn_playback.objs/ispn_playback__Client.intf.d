lib/playback/client.mli: Estimator
