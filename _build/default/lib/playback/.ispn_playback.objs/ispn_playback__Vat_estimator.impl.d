lib/playback/vat_estimator.ml: Float Stdlib
