lib/playback/vat_estimator.mli:
