lib/playback/client.ml: Delay_estimator Estimator Vat_estimator
