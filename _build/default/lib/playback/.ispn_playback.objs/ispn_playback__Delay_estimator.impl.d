lib/playback/delay_estimator.ml: Array Ispn_util Stdlib
