lib/playback/estimator.mli: Delay_estimator Vat_estimator
