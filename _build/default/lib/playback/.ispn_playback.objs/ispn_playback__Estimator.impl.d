lib/playback/estimator.ml: Delay_estimator Vat_estimator
