(** A common face over play-back point estimators.

    {!Client} adapts through this record, so a receiver can plug in the
    windowed-quantile tracker, the VAT-style filter, or anything else. *)

type t = {
  observe : float -> unit;
  estimate : unit -> float;
  count : unit -> int;
}

val of_quantile : Delay_estimator.t -> t
val of_vat : Vat_estimator.t -> t
val constant : float -> t
(** Never moves: turns an adaptive client into a rigid one (for tests). *)
