(** VAT-style play-back delay estimation.

    The paper cites the VAT packet-voice tool as a living adaptive
    application.  VAT's playout algorithm (later standardized around RTP)
    tracks a smoothed delay [d] and mean deviation [v] with exponential
    filters and plays out at [d + k v]; a sudden large delay jump flips it
    into a {e spike mode} that follows the delay closely until the spike
    drains, avoiding a long tail of losses during the transient.

    This estimator trades the exactness of {!Delay_estimator}'s windowed
    quantile for O(1) state and faster reaction to level shifts — the
    bench's playback experiment compares the two. *)

type t

val create :
  ?gain:float -> ?deviation_factor:float -> ?spike_threshold:float ->
  ?spike_exit:float -> unit -> t
(** [gain] (default 1/16) is the EWMA gain for [d] and [v];
    [deviation_factor] (default 4) the [k] in [d + k v];
    [spike_threshold] (default 8): a delay beyond [d + threshold * v]
    enters spike mode; [spike_exit] (default 2): spike mode ends once
    delays return within [d + exit * v]. *)

val observe : t -> float -> unit
val estimate : t -> float
(** Current playout point [d + k v] ([0.] before any observation). *)

val count : t -> int
val in_spike : t -> bool
