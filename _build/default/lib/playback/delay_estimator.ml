type t = {
  window : int;
  quantile : float;
  margin : float;
  buf : float array;
  mutable n : int;  (* total observations *)
}

let create ?(window = 200) ?(quantile = 0.99) ?(margin = 0.) () =
  assert (window > 0 && quantile >= 0. && quantile <= 1.);
  { window; quantile; margin; buf = Array.make window 0.; n = 0 }

let observe t d =
  t.buf.(t.n mod t.window) <- d;
  t.n <- t.n + 1

let count t = t.n

let estimate t =
  if t.n = 0 then t.margin
  else begin
    let live = Stdlib.min t.n t.window in
    let a = Array.sub t.buf 0 live in
    Array.sort compare a;
    t.margin +. Ispn_util.Quantile.of_sorted a t.quantile
  end
