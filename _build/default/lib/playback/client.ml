type mode =
  | Rigid of float
  | Adaptive of { estimator : Estimator.t; update_every : int }

type t = {
  mode : mode;
  mutable point : float;
  mutable received : int;
  mutable missed : int;
  mutable point_sum : float;  (* for the packet-averaged play-back point *)
  mutable since_update : int;
}

let create mode =
  let point =
    match mode with
    | Rigid bound -> bound
    | Adaptive { estimator; _ } -> estimator.Estimator.estimate ()
  in
  { mode; point; received = 0; missed = 0; point_sum = 0.; since_update = 0 }

let rigid ~bound = create (Rigid bound)

let adaptive_with ~estimator ?(update_every = 50) () =
  create (Adaptive { estimator; update_every })

let adaptive ?window ?quantile ?margin ?update_every () =
  let estimator =
    Estimator.of_quantile (Delay_estimator.create ?window ?quantile ?margin ())
  in
  adaptive_with ~estimator ?update_every ()

let adaptive_vat ?update_every () =
  adaptive_with ~estimator:(Estimator.of_vat (Vat_estimator.create ()))
    ?update_every ()

let receive t ~delay =
  t.received <- t.received + 1;
  t.point_sum <- t.point_sum +. t.point;
  if delay > t.point then t.missed <- t.missed + 1;
  match t.mode with
  | Rigid _ -> ()
  | Adaptive { estimator; update_every } ->
      estimator.Estimator.observe delay;
      t.since_update <- t.since_update + 1;
      (* Bootstrap: until a window's worth of data exists, track eagerly so a
         cold start does not count everything as lost. *)
      if
        t.since_update >= update_every
        || estimator.Estimator.count () < update_every
      then begin
        t.since_update <- 0;
        t.point <- estimator.Estimator.estimate ()
      end

let received t = t.received
let missed t = t.missed

let loss_rate t =
  if t.received = 0 then 0.
  else float_of_int t.missed /. float_of_int t.received

let playback_point t = t.point

let mean_playback_point t =
  if t.received = 0 then t.point
  else t.point_sum /. float_of_int t.received
