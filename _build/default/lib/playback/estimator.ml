type t = {
  observe : float -> unit;
  estimate : unit -> float;
  count : unit -> int;
}

let of_quantile de =
  {
    observe = Delay_estimator.observe de;
    estimate = (fun () -> Delay_estimator.estimate de);
    count = (fun () -> Delay_estimator.count de);
  }

let of_vat ve =
  {
    observe = Vat_estimator.observe ve;
    estimate = (fun () -> Vat_estimator.estimate ve);
    count = (fun () -> Vat_estimator.count ve);
  }

let constant point =
  let n = ref 0 in
  {
    observe = (fun _ -> incr n);
    estimate = (fun () -> point);
    count = (fun () -> !n);
  }
