type t = {
  n_classes : int;
  epochs : int;
  util : float array;  (* max utilization sample per epoch slot *)
  delay : float array array;  (* [epoch slot][class] max delay *)
  mutable cursor : int;
}

let create ~n_classes ?(epochs = 8) () =
  assert (n_classes > 0 && epochs > 0);
  {
    n_classes;
    epochs;
    util = Array.make epochs 0.;
    delay = Array.init epochs (fun _ -> Array.make n_classes 0.);
    cursor = 0;
  }

let note_util t u = t.util.(t.cursor) <- Stdlib.max t.util.(t.cursor) u

let note_delay t ~cls d =
  if cls < 0 || cls >= t.n_classes then
    invalid_arg "Meter.note_delay: class out of range";
  let row = t.delay.(t.cursor) in
  row.(cls) <- Stdlib.max row.(cls) d

let rotate t =
  t.cursor <- (t.cursor + 1) mod t.epochs;
  t.util.(t.cursor) <- 0.;
  Array.fill t.delay.(t.cursor) 0 t.n_classes 0.

let util_hat t = Array.fold_left Stdlib.max 0. t.util

let delay_hat t ~cls =
  if cls < 0 || cls >= t.n_classes then
    invalid_arg "Meter.delay_hat: class out of range";
  Array.fold_left (fun acc row -> Stdlib.max acc row.(cls)) 0. t.delay

let observed_classes t = t.n_classes
