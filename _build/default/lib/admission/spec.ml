type bucket = { rate_bps : float; depth_bits : float }

let bucket ~rate_pps ~depth_packets ?(packet_bits = Ispn_util.Units.packet_bits)
    () =
  assert (rate_pps > 0. && depth_packets > 0.);
  {
    rate_bps = rate_pps *. float_of_int packet_bits;
    depth_bits = depth_packets *. float_of_int packet_bits;
  }

type request =
  | Guaranteed of { clock_rate_bps : float }
  | Predicted of { bucket : bucket; target_delay : float; target_loss : float }
  | Datagram

let pp_request ppf = function
  | Guaranteed { clock_rate_bps } ->
      Format.fprintf ppf "guaranteed(r=%.0f bps)" clock_rate_bps
  | Predicted { bucket; target_delay; target_loss } ->
      Format.fprintf ppf "predicted(r=%.0f bps, b=%.0f bits, D=%gs, L=%g)"
        bucket.rate_bps bucket.depth_bits target_delay target_loss
  | Datagram -> Format.fprintf ppf "datagram"

let is_realtime = function
  | Guaranteed _ | Predicted _ -> true
  | Datagram -> false

let declared_rate_bps = function
  | Guaranteed { clock_rate_bps } -> clock_rate_bps
  | Predicted { bucket; _ } -> bucket.rate_bps
  | Datagram -> 0.
