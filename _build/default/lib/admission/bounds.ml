let pg_bound ~bucket ~clock_rate_bps ~hops
    ?(max_packet_bits = Ispn_util.Units.packet_bits) () =
  if hops < 1 then invalid_arg "Bounds.pg_bound: hops must be >= 1";
  if clock_rate_bps < bucket.Spec.rate_bps -. 1e-9 then
    invalid_arg "Bounds.pg_bound: clock rate below bucket rate";
  (bucket.Spec.depth_bits
  +. (float_of_int ((hops - 1) * max_packet_bits)))
  /. clock_rate_bps

let pg_bound_packetized ~bucket ~clock_rate_bps ~hops ~link_rate_bps
    ~max_competitors ?(max_packet_bits = Ispn_util.Units.packet_bits) () =
  if max_competitors < 0 then
    invalid_arg "Bounds.pg_bound_packetized: negative competitors";
  pg_bound ~bucket ~clock_rate_bps ~hops ~max_packet_bits ()
  +. float_of_int (hops * max_competitors * max_packet_bits) /. link_rate_bps

let effective_depth_bits ~bucket ~clock_rate_bps ~peak_rate_bps
    ?(max_packet_bits = Ispn_util.Units.packet_bits) () =
  if peak_rate_bps <= clock_rate_bps then float_of_int max_packet_bits
  else bucket.Spec.depth_bits

let predicted_bound ~class_targets ~cls ~hops =
  if cls < 0 || cls >= Array.length class_targets then
    invalid_arg "Bounds.predicted_bound: class out of range";
  if hops < 1 then invalid_arg "Bounds.predicted_bound: hops must be >= 1";
  float_of_int hops *. class_targets.(cls)
