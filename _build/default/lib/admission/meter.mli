(** Conservative measurement of link load and class delays (Section 9).

    The admission rule is driven by measured quantities: [nu_hat], the
    post-facto bound on real-time utilization of the link, and [d_hat_j],
    the measured maximal delay of each class.  The paper stresses that these
    "should not just be averages but consistently conservative estimates";
    this meter therefore reports the {e maximum} over a rotating window of
    recent epochs, so a transient burst keeps influencing admission for a
    while after it has passed.

    The meter is passive: the owner feeds it one utilization sample per
    epoch (real-time bits transmitted during the epoch divided by link
    capacity), feeds it every per-packet class delay, and calls {!rotate} at
    each epoch boundary. *)

type t

val create : n_classes:int -> ?epochs:int -> unit -> t
(** [epochs] (default 8) is the window size over which maxima are kept. *)

val note_util : t -> float -> unit
(** Record a real-time utilization sample for the current epoch. *)

val note_delay : t -> cls:int -> float -> unit
(** Record one packet's queueing delay (seconds) in class [cls]. *)

val rotate : t -> unit
(** Close the current epoch and start a fresh one; the oldest epoch falls
    out of the window. *)

val util_hat : t -> float
(** Conservative (windowed max) real-time utilization estimate in [0, 1+].
    Zero when nothing has been observed. *)

val delay_hat : t -> cls:int -> float
(** Conservative maximal delay estimate of class [cls] (seconds). *)

val observed_classes : t -> int
