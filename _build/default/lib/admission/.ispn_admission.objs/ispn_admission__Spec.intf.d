lib/admission/spec.mli: Format
