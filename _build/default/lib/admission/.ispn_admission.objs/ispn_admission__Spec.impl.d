lib/admission/spec.ml: Format Ispn_util
