lib/admission/controller.mli: Meter Spec
