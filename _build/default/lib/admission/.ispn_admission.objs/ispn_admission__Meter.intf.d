lib/admission/meter.mli:
