lib/admission/meter.ml: Array Stdlib
