lib/admission/bounds.mli: Spec
