lib/admission/bounds.ml: Array Ispn_util Spec
