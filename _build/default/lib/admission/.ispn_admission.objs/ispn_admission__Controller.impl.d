lib/admission/controller.ml: Array Hashtbl Ispn_util List Logs Meter Printf Spec Stdlib
