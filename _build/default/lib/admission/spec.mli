(** The service interface (Section 8).

    Two request shapes exist.  A {e guaranteed} client only names the clock
    rate [r] it wants — the network guarantees the rate and does no
    conformance check, because the client made no traffic commitment; the
    client computes its own worst-case delay from its known [b(r)].  A
    {e predicted} client declares both its traffic, as an [(r, b)] token
    bucket which the edge enforces, and the service it wants, as a delay
    target [D] and loss tolerance [L]; the network maps the flow onto a
    priority class at each switch.  Datagram traffic requests nothing. *)

type bucket = { rate_bps : float; depth_bits : float }
(** A token-bucket traffic characterization. *)

val bucket :
  rate_pps:float -> depth_packets:float -> ?packet_bits:int -> unit -> bucket
(** Convenience constructor in the paper's packet units (e.g. [(A, 50)]). *)

type request =
  | Guaranteed of { clock_rate_bps : float }
  | Predicted of {
      bucket : bucket;
      target_delay : float;  (** [D], seconds, per-switch target. *)
      target_loss : float;  (** [L], fraction. *)
    }
  | Datagram

val pp_request : Format.formatter -> request -> unit

val is_realtime : request -> bool
(** True for guaranteed and predicted requests. *)

val declared_rate_bps : request -> float
(** The long-term rate the request commits to: the clock rate for
    guaranteed, the bucket rate for predicted, [0.] for datagram. *)
