(** Delay bounds for the two real-time services.

    For guaranteed flows, the Parekh-Gallager result (Section 4): a flow
    that conforms to an [(r, b)] token bucket and receives clock rate [r] at
    every switch on a [K]-hop path has end-to-end queueing delay at most

    {v b/r  +  (K - 1) * Lmax / r v}

    — the delay of draining the full bucket through a single link of rate
    [r], plus one maximal packet of store-and-forward slack per additional
    hop.  Table 3's "P-G bound" column is exactly this quantity.

    For predicted flows, the advertised bound is simply the sum of the
    per-switch class targets [D_i] along the path (Section 7: "the network
    should not attempt to characterize or control the service to great
    precision, and thus should just use the sum of the [D_i]'s"). *)

val pg_bound :
  bucket:Spec.bucket -> clock_rate_bps:float -> hops:int ->
  ?max_packet_bits:int -> unit -> float
(** End-to-end guaranteed queueing-delay bound in seconds over [hops]
    inter-switch links.  [clock_rate_bps] must be at least the bucket rate
    for the bound to be meaningful; raises [Invalid_argument] if it is
    smaller, or if [hops < 1]. *)

val pg_bound_packetized :
  bucket:Spec.bucket ->
  clock_rate_bps:float ->
  hops:int ->
  link_rate_bps:float ->
  max_competitors:int ->
  ?max_packet_bits:int ->
  unit ->
  float
(** {!pg_bound} plus the per-hop packetization slack of a self-clocked
    packetized implementation: at each hop up to [max_competitors] other
    backlogged flows can each slip one maximal packet ahead of the fluid
    schedule, adding [hops * max_competitors * Lmax / C].  The paper's
    Table 3 prints the fluid bound (the slack is negligible at its
    parameters: about 3 packet times against bounds of 24-612); property
    tests that drive adversarial small-bucket/high-rate corners check
    against this packetized form, which our scheduler provably-by-test
    respects. *)

val effective_depth_bits :
  bucket:Spec.bucket -> clock_rate_bps:float -> peak_rate_bps:float ->
  ?max_packet_bits:int -> unit -> float
(** The bucket depth [b(r)] that matters at clock rate [r]: a source whose
    peak emission rate does not exceed its clock rate can never accumulate
    more than one packet of backlog, so its effective depth is a single
    packet (this is why Table 3's Guaranteed-Peak bounds use [b = 1]).
    Otherwise the declared depth applies. *)

val predicted_bound : class_targets:float array -> cls:int -> hops:int -> float
(** Advertised a-priori bound for a predicted flow placed in class [cls] at
    each of [hops] switches: [hops * class_targets.(cls)]. *)
