type t = {
  link_rate_bps : float;
  on_reset : unit -> unit;
  mutable v : float;
  mutable last_update : float;
  mutable active_weight : float;
  mutable active_count : int;
}

let create ~link_rate_bps ~on_reset =
  assert (link_rate_bps > 0.);
  {
    link_rate_bps;
    on_reset;
    v = 0.;
    last_update = 0.;
    active_weight = 0.;
    active_count = 0;
  }

let advance t ~now =
  if now > t.last_update then begin
    if t.active_weight > 0. then
      t.v <- t.v +. ((now -. t.last_update) *. t.link_rate_bps /. t.active_weight);
    t.last_update <- now
  end

let v t = t.v

let flow_activated t ~weight =
  assert (weight > 0.);
  t.active_weight <- t.active_weight +. weight;
  t.active_count <- t.active_count + 1

let flow_deactivated t ~now ~weight =
  advance t ~now;
  t.active_weight <- t.active_weight -. weight;
  t.active_count <- t.active_count - 1;
  assert (t.active_count >= 0);
  if t.active_count = 0 then begin
    (* End of the busy period: restart the virtual clock. *)
    t.v <- 0.;
    t.active_weight <- 0.;
    t.on_reset ()
  end

let adjust_active t ~now ~delta =
  advance t ~now;
  t.active_weight <- t.active_weight +. delta;
  assert (t.active_weight > 0.)

let active_weight t = t.active_weight
