(** Static earliest-deadline-first — a Delay-EDD-style baseline.

    Each flow has a fixed local delay budget [d]; a packet arriving at time
    [a] gets deadline [a + d] and packets leave in deadline order (Ferrari &
    Verma's Delay-EDD assigns deadlines this way from per-channel delay
    bounds).  With equal budgets for every flow this degenerates to FIFO —
    the observation of Section 5 that deadline scheduling in a homogeneous
    class *is* FIFO, which tests verify. *)

val create :
  pool:Ispn_sim.Qdisc.pool -> deadline_of:(int -> float) -> unit ->
  Ispn_sim.Qdisc.t
(** [deadline_of flow] is the flow's local delay budget in seconds
    (consulted at first packet; must be non-negative). *)
