open Ispn_sim

type flow_state = { rate : float; mutable vc : float }
type entry = { tag : float; arrival_seq : int; pkt : Packet.t }

let compare_entry a b =
  match compare a.tag b.tag with
  | 0 -> compare a.arrival_seq b.arrival_seq
  | c -> c

let create ~pool ~rate_of () =
  let flows : (int, flow_state) Hashtbl.t = Hashtbl.create 32 in
  let heap = Ispn_util.Heap.create ~cmp:compare_entry () in
  let next_seq = ref 0 in
  let flow_state flow =
    match Hashtbl.find_opt flows flow with
    | Some fs -> fs
    | None ->
        let rate = rate_of flow in
        if rate <= 0. then
          invalid_arg
            (Printf.sprintf "Virtual_clock: flow %d has rate %g" flow rate);
        let fs = { rate; vc = 0. } in
        Hashtbl.add flows flow fs;
        fs
  in
  let enqueue ~now pkt =
    pkt.Packet.enqueued_at <- now;
    if Qdisc.pool_take pool then begin
      let fs = flow_state pkt.Packet.flow in
      let tag =
        Stdlib.max now fs.vc +. (float_of_int pkt.Packet.size_bits /. fs.rate)
      in
      fs.vc <- tag;
      Ispn_util.Heap.push heap { tag; arrival_seq = !next_seq; pkt };
      incr next_seq;
      true
    end
    else false
  in
  let dequeue ~now:_ =
    match Ispn_util.Heap.pop heap with
    | None -> None
    | Some { pkt; _ } ->
        Qdisc.pool_release pool;
        Some pkt
  in
  Qdisc.make ~enqueue ~dequeue
    ~length:(fun () -> Ispn_util.Heap.length heap)
    ~name:"VirtualClock" ()
