open Ispn_sim

let create ~pool () =
  let q : Packet.t Queue.t = Queue.create () in
  let enqueue ~now pkt =
    pkt.Packet.enqueued_at <- now;
    if Qdisc.pool_take pool then begin
      Queue.push pkt q;
      true
    end
    else false
  in
  let dequeue ~now:_ =
    match Queue.take_opt q with
    | None -> None
    | Some pkt ->
        Qdisc.pool_release pool;
        Some pkt
  in
  Qdisc.make ~enqueue ~dequeue ~length:(fun () -> Queue.length q) ~name:"FIFO" ()
