(** Jitter-EDD (Verma, Zhang & Ferrari 1991) — non-work-conserving
    deadline scheduling with cross-hop jitter cancellation.

    Like FIFO+, Jitter-EDD carries a delay field in the packet header; the
    mechanisms differ in sign and in work conservation.  At each hop a
    packet is stamped with deadline [eligible + d] where [d] is its flow's
    local delay budget.  When the packet departs {e ahead} of that
    deadline, the slack is written into the header; the next switch then
    {b holds} the packet for exactly that slack before it becomes eligible,
    reconstructing the fully-delayed schedule.  End-to-end jitter collapses
    to the jitter of the last hop, at the price of never letting a packet
    run early (higher mean delay, idle links).

    This implementation reuses [Packet.offset] as the header field, carrying
    {e earliness} (non-negative) rather than FIFO+'s signed lateness; a
    network mixes one interpretation per path, never both. *)

val create :
  engine:Ispn_sim.Engine.t ->
  budget_of:(int -> float) ->
  pool:Ispn_sim.Qdisc.pool ->
  unit ->
  Ispn_sim.Qdisc.t
(** [budget_of flow] is the flow's per-hop delay budget [d] in seconds
    (consulted at first packet; must be positive). *)
