open Ispn_sim

type entry = { eligible : float; pkt : Packet.t }

let create ~engine ~frame ~pool () =
  assert (frame > 0.);
  let q : entry Queue.t = Queue.create () in
  let waker = ref (fun () -> ()) in
  let next_boundary t = (Float.of_int (int_of_float (t /. frame)) +. 1.) *. frame in
  let enqueue ~now pkt =
    pkt.Packet.enqueued_at <- now;
    if Qdisc.pool_take pool then begin
      Queue.push { eligible = next_boundary now; pkt } q;
      true
    end
    else false
  in
  let dequeue ~now =
    match Queue.peek_opt q with
    | None -> None
    | Some { eligible; pkt } ->
        if eligible <= now +. 1e-12 then begin
          ignore (Queue.pop q);
          Qdisc.pool_release pool;
          Some pkt
        end
        else begin
          (* Head not yet eligible: hold the line idle and call the link
             back at the frame boundary. *)
          ignore
            (Engine.schedule engine ~at:eligible (fun () -> !waker ()));
          None
        end
  in
  Qdisc.make
    ~attach_waker:(fun w -> waker := w)
    ~enqueue ~dequeue
    ~length:(fun () -> Queue.length q)
    ~name:"Stop-and-Go" ()
