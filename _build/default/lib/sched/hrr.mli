(** Hierarchical Round Robin (Kalmanek, Kanakia & Keshav 1990) —
    non-work-conserving, rate-controlled baseline.

    Each flow owns a fixed number of packet slots per frame of length
    [frame].  Within a frame, backlogged flows are served round-robin until
    each has consumed its slots; a flow's unused slots are {e not} given
    away — the link idles instead, which is what bounds every flow's rate
    (and hence downstream burstiness) at the cost of wasted capacity.  This
    is the single-level special case of the HRR hierarchy, which is all the
    paper's comparison calls for. *)

val create :
  engine:Ispn_sim.Engine.t ->
  frame:float ->
  slots_of:(int -> int) ->
  pool:Ispn_sim.Qdisc.pool ->
  unit ->
  Ispn_sim.Qdisc.t
(** [slots_of flow] is the flow's per-frame packet allocation (consulted at
    first packet; must be positive). *)
