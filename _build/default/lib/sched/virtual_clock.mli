(** VirtualClock (Zhang, SIGCOMM 1990) — related-work baseline.

    Each flow runs a virtual clock at its reserved rate: packet [i] of a flow
    with rate [r] is stamped [max (now, vc) + size / r] where [vc] is the
    flow's previous stamp, and packets leave in stamp order.  Unlike WFQ's
    virtual time, the reference clock is *real* time, so a flow that idles
    does not bank credit.  Behaviour is very close to WFQ for the paper's
    workloads (both are isolating time-stamp schedulers). *)

val create :
  pool:Ispn_sim.Qdisc.pool -> rate_of:(int -> float) -> unit ->
  Ispn_sim.Qdisc.t
(** [rate_of flow] is the flow's reserved rate in bits/s (consulted at first
    packet; must be positive). *)
