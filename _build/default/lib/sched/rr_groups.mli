(** Round-robin among groups, FIFO within each group.

    The Jacobson-Floyd scheme sketched in Section 11: traffic in a priority
    level is combined into aggregate groups; each group keeps FIFO order and
    the scheduler round-robins packet-by-packet among the backlogged groups.
    Compared to the CSZ choice of FIFO across the whole class, round-robin
    re-introduces per-group isolation inside the class — the bake-off bench
    measures what that costs in post-facto jitter. *)

val create :
  pool:Ispn_sim.Qdisc.pool ->
  n_groups:int ->
  group_of:(Ispn_sim.Packet.t -> int) ->
  unit ->
  Ispn_sim.Qdisc.t
(** [group_of pkt] must return a value in [\[0, n_groups)]. *)
