(** Deficit round robin — a later, cheaper approximation of fair queueing.

    Included as a baseline for the scheduler bake-off: it provides WFQ-like
    per-flow isolation with O(1) dequeue, at the cost of burstier short-term
    service.  Each backlogged flow holds a deficit counter; a round visits
    flows cyclically, adding a quantum and sending packets while the deficit
    covers them. *)

val create :
  pool:Ispn_sim.Qdisc.pool -> quantum_bits:int -> unit -> Ispn_sim.Qdisc.t
(** [quantum_bits] must be at least the maximum packet size or a flow could
    stall; raises [Invalid_argument] if non-positive. *)
