open Ispn_sim

type entry = { deadline : float; arrival_seq : int; pkt : Packet.t }

let compare_entry a b =
  match compare a.deadline b.deadline with
  | 0 -> compare a.arrival_seq b.arrival_seq
  | c -> c

let create ~pool ~deadline_of () =
  let budgets : (int, float) Hashtbl.t = Hashtbl.create 32 in
  let heap = Ispn_util.Heap.create ~cmp:compare_entry () in
  let next_seq = ref 0 in
  let budget flow =
    match Hashtbl.find_opt budgets flow with
    | Some d -> d
    | None ->
        let d = deadline_of flow in
        if d < 0. then
          invalid_arg (Printf.sprintf "Edf: flow %d has budget %g" flow d);
        Hashtbl.add budgets flow d;
        d
  in
  let enqueue ~now pkt =
    pkt.Packet.enqueued_at <- now;
    if Qdisc.pool_take pool then begin
      let deadline = now +. budget pkt.Packet.flow in
      Ispn_util.Heap.push heap { deadline; arrival_seq = !next_seq; pkt };
      incr next_seq;
      true
    end
    else false
  in
  let dequeue ~now:_ =
    match Ispn_util.Heap.pop heap with
    | None -> None
    | Some { pkt; _ } ->
        Qdisc.pool_release pool;
        Some pkt
  in
  Qdisc.make ~enqueue ~dequeue
    ~length:(fun () -> Ispn_util.Heap.length heap)
    ~name:"EDF" ()
