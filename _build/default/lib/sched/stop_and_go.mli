(** Stop-and-Go queueing (Golestani 1990) — non-work-conserving baseline.

    Time is divided into frames of length [frame].  A packet arriving during
    one frame may only depart during a later frame: it becomes eligible at
    the first frame boundary after its arrival.  Eligible packets go out in
    FIFO order; when the head packet is not yet eligible the link is left
    {e idle} even though work is queued — the defining non-work-conserving
    trade of Section 11: "these algorithms typically deliver higher average
    delays in return for lower jitter."  Per-hop jitter is bounded by one
    frame regardless of the competing load, provided each flow's
    arrivals fit its frame allocation. *)

val create :
  engine:Ispn_sim.Engine.t ->
  frame:float ->
  pool:Ispn_sim.Qdisc.pool ->
  unit ->
  Ispn_sim.Qdisc.t
(** [frame] is the framing time [T] in seconds (must be positive). *)
