open Ispn_sim

type flow_state = {
  queue : Packet.t Queue.t;
  mutable deficit : int;
  mutable in_round : bool;
}

(* Standard DRR: when a flow reaches the head of the active list it earns
   one quantum and may send as long as its deficit covers the head packet;
   it then goes to the tail keeping any leftover deficit (reset only when
   it drains).  Because the qdisc interface serves one packet per dequeue,
   [current] remembers the flow whose service opportunity is still open, so
   the quantum is granted once per round — not once per packet.  (An
   earlier version re-credited on every visit, which over-served
   large-packet flows; the mixed-size fairness test pinned this down.) *)
let create ~pool ~quantum_bits () =
  if quantum_bits <= 0 then invalid_arg "Drr: quantum must be positive";
  let flows : (int, flow_state) Hashtbl.t = Hashtbl.create 32 in
  let active : int Queue.t = Queue.create () in
  let current : int option ref = ref None in
  let total = ref 0 in
  let flow_state flow =
    match Hashtbl.find_opt flows flow with
    | Some fs -> fs
    | None ->
        let fs = { queue = Queue.create (); deficit = 0; in_round = false } in
        Hashtbl.add flows flow fs;
        fs
  in
  let enqueue ~now pkt =
    pkt.Packet.enqueued_at <- now;
    if Qdisc.pool_take pool then begin
      let fs = flow_state pkt.Packet.flow in
      Queue.push pkt fs.queue;
      incr total;
      if (not fs.in_round) && !current <> Some pkt.Packet.flow then begin
        fs.in_round <- true;
        fs.deficit <- 0;
        Queue.push pkt.Packet.flow active
      end;
      true
    end
    else false
  in
  (* Serve one packet from [flow] and update its service-opportunity
     state. *)
  let serve flow fs =
    let pkt = Queue.pop fs.queue in
    fs.deficit <- fs.deficit - pkt.Packet.size_bits;
    decr total;
    Qdisc.pool_release pool;
    if Queue.is_empty fs.queue then begin
      (* Drained: leave the round entirely and forfeit leftover credit. *)
      fs.deficit <- 0;
      fs.in_round <- false;
      current := None
    end
    else if fs.deficit < (Queue.peek fs.queue).Packet.size_bits then begin
      (* Opportunity exhausted: back to the tail, keep the remainder. *)
      fs.in_round <- true;
      Queue.push flow active;
      current := None
    end;
    Some pkt
  in
  let rec dequeue ~now =
    match !current with
    | Some flow ->
        let fs = Hashtbl.find flows flow in
        (* The open opportunity always covers the head packet (checked when
           it was opened or after the previous send). *)
        serve flow fs
    | None -> (
        match Queue.take_opt active with
        | None -> None
        | Some flow ->
            let fs = Hashtbl.find flows flow in
            if Queue.is_empty fs.queue then begin
              (* Flow drained while waiting its turn. *)
              fs.in_round <- false;
              dequeue ~now
            end
            else begin
              fs.deficit <- fs.deficit + quantum_bits;
              if fs.deficit >= (Queue.peek fs.queue).Packet.size_bits then begin
                fs.in_round <- false;
                current := Some flow;
                dequeue ~now
              end
              else begin
                (* Not yet affordable: keep saving, go to the tail. *)
                Queue.push flow active;
                dequeue ~now
              end
            end)
  in
  Qdisc.make ~enqueue ~dequeue ~length:(fun () -> !total) ~name:"DRR" ()
