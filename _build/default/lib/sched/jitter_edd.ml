open Ispn_sim

type entry = {
  eligible : float;
  deadline : float;
  arrival_seq : int;
  pkt : Packet.t;
}

let compare_deadline a b =
  match compare a.deadline b.deadline with
  | 0 -> compare a.arrival_seq b.arrival_seq
  | c -> c

let compare_eligible a b =
  match compare a.eligible b.eligible with
  | 0 -> compare a.arrival_seq b.arrival_seq
  | c -> c

let create ~engine ~budget_of ~pool () =
  let budgets : (int, float) Hashtbl.t = Hashtbl.create 32 in
  (* Packets still being held back wait in [holding]; eligible packets sit
     in [ready], ordered by deadline. *)
  let holding = Ispn_util.Heap.create ~cmp:compare_eligible () in
  let ready = Ispn_util.Heap.create ~cmp:compare_deadline () in
  let next_seq = ref 0 in
  let waker = ref (fun () -> ()) in
  let budget flow =
    match Hashtbl.find_opt budgets flow with
    | Some d -> d
    | None ->
        let d = budget_of flow in
        if d <= 0. then
          invalid_arg (Printf.sprintf "Jitter_edd: flow %d has budget %g" flow d);
        Hashtbl.add budgets flow d;
        d
  in
  (* Move everything whose holding time has expired into the ready heap. *)
  let promote ~now =
    let rec go () =
      match Ispn_util.Heap.peek holding with
      | Some e when e.eligible <= now +. 1e-12 ->
          ignore (Ispn_util.Heap.pop holding);
          Ispn_util.Heap.push ready e;
          go ()
      | Some _ | None -> ()
    in
    go ()
  in
  let enqueue ~now pkt =
    pkt.Packet.enqueued_at <- now;
    if Qdisc.pool_take pool then begin
      (* The header carries the earliness accumulated at the previous hop;
         the packet is held for exactly that long here. *)
      let hold = Stdlib.max 0. pkt.Packet.offset in
      let eligible = now +. hold in
      let deadline = eligible +. budget pkt.Packet.flow in
      let e = { eligible; deadline; arrival_seq = !next_seq; pkt } in
      incr next_seq;
      if hold > 0. then begin
        Ispn_util.Heap.push holding e;
        ignore (Engine.schedule engine ~at:eligible (fun () -> !waker ()))
      end
      else Ispn_util.Heap.push ready e;
      true
    end
    else false
  in
  let dequeue ~now =
    promote ~now;
    match Ispn_util.Heap.pop ready with
    | Some e ->
        Qdisc.pool_release pool;
        (* Export this hop's earliness for the next hop to cancel. *)
        e.pkt.Packet.offset <- Stdlib.max 0. (e.deadline -. now);
        Some e.pkt
    | None -> None
  in
  let length () = Ispn_util.Heap.length holding + Ispn_util.Heap.length ready in
  Qdisc.make
    ~attach_waker:(fun w -> waker := w)
    ~enqueue ~dequeue ~length ~name:"Jitter-EDD" ()
