(** First-in first-out queueing.

    The paper's point (Section 5): within a class of clients with similar
    service desires, FIFO is exactly earliest-deadline-first and *shares*
    jitter across the aggregate — bursts are multiplexed instead of being
    charged back to the bursting source, so the post-facto delay bound (the
    99.9th percentile in Table 1) is lower than under WFQ at the same
    utilization. *)

val create : pool:Ispn_sim.Qdisc.pool -> unit -> Ispn_sim.Qdisc.t
(** Tail-drop FIFO drawing buffers from [pool]. *)
