open Ispn_sim

type flow_state = {
  queue : Packet.t Queue.t;
  slots : int;  (* allocation per frame *)
  mutable credit : int;  (* slots left in the current frame *)
}

let create ~engine ~frame ~slots_of ~pool () =
  assert (frame > 0.);
  let flows : (int, flow_state) Hashtbl.t = Hashtbl.create 32 in
  let order : int Queue.t = Queue.create () in
  (* Round-robin visiting order; rebuilt lazily. *)
  let total = ref 0 in
  let waker = ref (fun () -> ()) in
  let frame_start = ref 0. in
  let boundary_armed = ref false in
  let flow_state flow =
    match Hashtbl.find_opt flows flow with
    | Some fs -> fs
    | None ->
        let slots = slots_of flow in
        if slots <= 0 then
          invalid_arg (Printf.sprintf "Hrr: flow %d has %d slots" flow slots);
        let fs = { queue = Queue.create (); slots; credit = slots } in
        Hashtbl.add flows flow fs;
        Queue.push flow order;
        fs
  in
  let rec arm_boundary ~now =
    if not !boundary_armed then begin
      boundary_armed := true;
      let next = !frame_start +. frame in
      let next = if next <= now then now +. frame else next in
      ignore
        (Engine.schedule engine ~at:next (fun () ->
             boundary_armed := false;
             frame_start := next;
             Hashtbl.iter (fun _ fs -> fs.credit <- fs.slots) flows;
             if !total > 0 then begin
               (* More frames will be needed while backlog remains. *)
               arm_boundary ~now:next;
               !waker ()
             end))
    end
  in
  let enqueue ~now pkt =
    pkt.Packet.enqueued_at <- now;
    if Qdisc.pool_take pool then begin
      let fs = flow_state pkt.Packet.flow in
      Queue.push pkt fs.queue;
      incr total;
      arm_boundary ~now;
      true
    end
    else false
  in
  let dequeue ~now:_ =
    if !total = 0 then None
    else begin
      (* Visit each flow at most once looking for queued work + credit. *)
      let n = Queue.length order in
      let rec visit k =
        if k >= n then None
        else begin
          let flow = Queue.pop order in
          Queue.push flow order;
          let fs = Hashtbl.find flows flow in
          if fs.credit > 0 && not (Queue.is_empty fs.queue) then begin
            fs.credit <- fs.credit - 1;
            decr total;
            Qdisc.pool_release pool;
            Some (Queue.pop fs.queue)
          end
          else visit (k + 1)
        end
      in
      visit 0
      (* [None] with work queued means every backlogged flow exhausted its
         frame credit; the armed frame boundary will wake the link. *)
    end
  in
  Qdisc.make
    ~attach_waker:(fun w -> waker := w)
    ~enqueue ~dequeue
    ~length:(fun () -> !total)
    ~name:"HRR" ()
