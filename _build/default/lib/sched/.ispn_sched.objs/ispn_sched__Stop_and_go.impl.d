lib/sched/stop_and_go.ml: Engine Float Ispn_sim Packet Qdisc Queue
