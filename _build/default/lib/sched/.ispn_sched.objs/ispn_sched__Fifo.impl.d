lib/sched/fifo.ml: Ispn_sim Packet Qdisc Queue
