lib/sched/hrr.ml: Engine Hashtbl Ispn_sim Packet Printf Qdisc Queue
