lib/sched/edf.mli: Ispn_sim
