lib/sched/fifo_plus.ml: Ispn_sim Ispn_util Packet Qdisc
