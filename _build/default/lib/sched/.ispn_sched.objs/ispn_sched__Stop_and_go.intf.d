lib/sched/stop_and_go.mli: Ispn_sim
