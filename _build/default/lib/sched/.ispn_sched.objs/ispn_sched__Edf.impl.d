lib/sched/edf.ml: Hashtbl Ispn_sim Ispn_util Packet Printf Qdisc
