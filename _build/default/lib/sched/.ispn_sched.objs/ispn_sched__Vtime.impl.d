lib/sched/vtime.ml:
