lib/sched/prio.mli: Ispn_sim
