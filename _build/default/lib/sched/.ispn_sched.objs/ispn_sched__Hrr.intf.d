lib/sched/hrr.mli: Ispn_sim
