lib/sched/virtual_clock.ml: Hashtbl Ispn_sim Ispn_util Packet Printf Qdisc Stdlib
