lib/sched/wfq.mli: Ispn_sim
