lib/sched/drr.ml: Hashtbl Ispn_sim Packet Qdisc Queue
