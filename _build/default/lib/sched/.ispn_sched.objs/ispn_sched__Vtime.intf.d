lib/sched/vtime.mli:
