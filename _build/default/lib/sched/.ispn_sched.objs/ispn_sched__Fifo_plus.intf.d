lib/sched/fifo_plus.mli: Ispn_sim
