lib/sched/drr.mli: Ispn_sim
