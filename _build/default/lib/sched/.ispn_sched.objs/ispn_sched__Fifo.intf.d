lib/sched/fifo.mli: Ispn_sim
