lib/sched/rr_groups.mli: Ispn_sim
