lib/sched/rr_groups.ml: Array Ispn_sim Packet Printf Qdisc Queue
