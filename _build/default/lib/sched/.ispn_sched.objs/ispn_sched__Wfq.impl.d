lib/sched/wfq.ml: Hashtbl Ispn_sim Ispn_util Packet Printf Qdisc Stdlib Vtime
