lib/sched/prio.ml: Array Ispn_sim Packet Printf Qdisc
