lib/sched/jitter_edd.mli: Ispn_sim
