lib/sched/jitter_edd.ml: Engine Hashtbl Ispn_sim Ispn_util Packet Printf Qdisc Stdlib
