lib/sched/virtual_clock.mli: Ispn_sim
