type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

(* Mixing function from Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_raw g =
  g.state <- Int64.add g.state golden_gamma;
  g.state

let int64 g = mix64 (next_raw g)

let split g = { state = int64 g }

let float g =
  (* Use the top 53 bits for a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (int64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int g ~bound =
  assert (bound > 0);
  (* Rejection-free for our purposes: modulo bias is negligible for the small
     bounds used in simulation (< 2^20 against a 62-bit range).  Shift by two
     so the value fits OCaml's 63-bit native int as a non-negative number. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 g) 2) in
  v mod bound

let bool g = Int64.logand (int64 g) 1L = 1L
