let of_sorted a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Quantile.of_sorted: empty";
  if q < 0. || q > 1. then invalid_arg "Quantile.of_sorted: q out of range";
  (* Nearest-rank: smallest index i such that (i+1)/n >= q. *)
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  let idx = if rank <= 0 then 0 else Stdlib.min (n - 1) (rank - 1) in
  a.(idx)

let of_fvec v q = of_sorted (Fvec.sorted_copy v) q
let percentile v p = of_fvec v (p /. 100.)
let median v = of_fvec v 0.5
