let check_stable ~lambda ~mu =
  if not (lambda > 0. && mu > lambda) then
    invalid_arg "Analytic: need 0 < lambda < mu"

let mm1_mean_wait ~lambda ~mu =
  check_stable ~lambda ~mu;
  let rho = lambda /. mu in
  rho /. (mu -. lambda)

let mm1_mean_sojourn ~lambda ~mu =
  check_stable ~lambda ~mu;
  1. /. (mu -. lambda)

let mg1_mean_wait ~lambda ~mean_service ~var_service =
  let mu = 1. /. mean_service in
  check_stable ~lambda ~mu;
  let second_moment = var_service +. (mean_service *. mean_service) in
  lambda *. second_moment /. (2. *. (1. -. (lambda *. mean_service)))

let md1_mean_wait ~lambda ~service =
  mg1_mean_wait ~lambda ~mean_service:service ~var_service:0.

let utilization ~lambda ~service = lambda *. service
