let link = Logs.Src.create "ispn.link" ~doc:"Link-level events"
let admission = Logs.Src.create "ispn.admission" ~doc:"Admission decisions"
let service = Logs.Src.create "ispn.service" ~doc:"Service establishment"

let setup ?(level = Logs.Info) () =
  Logs.set_reporter (Logs.format_reporter ());
  List.iter
    (fun src -> Logs.Src.set_level src (Some level))
    [ link; admission; service ]
