(** Growable float vector.

    Delay probes append one observation per packet; a ten-minute Table-2 run
    records a few hundred thousand floats per flow, so the representation is
    an amortized-doubling [float array] rather than a list. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> float -> unit
val get : t -> int -> float
(** Raises [Invalid_argument] when out of bounds. *)

val to_array : t -> float array
(** Fresh array of the live elements. *)

val sorted_copy : t -> float array
(** Ascending copy; used by {!Quantile}. *)

val iter : (float -> unit) -> t -> unit
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
val clear : t -> unit
