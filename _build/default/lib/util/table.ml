type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = []) ~header ~rows () =
  let ncols =
    List.fold_left
      (fun acc row -> Stdlib.max acc (List.length row))
      (List.length header) rows
  in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row
    else row @ List.init (ncols - len) (fun _ -> "")
  in
  let header = normalize header in
  let rows = List.map normalize rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let align_of i =
    match List.nth_opt align i with
    | Some a -> a
    | None -> if i = 0 then Left else Right
  in
  let line row =
    row
    |> List.mapi (fun i cell -> pad (align_of i) widths.(i) cell)
    |> String.concat "  "
  in
  let rule =
    Array.to_list widths
    |> List.map (fun w -> String.make w '-')
    |> String.concat "  "
  in
  String.concat "\n" (line header :: rule :: List.map line rows)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
