(** Closed-form queueing results used to validate the simulator.

    The discrete-event substrate is trusted because, fed textbook arrival
    processes, it reproduces textbook queueing delays: an M/D/1 queue for
    Poisson arrivals of fixed-size packets (the integration suite compares
    simulated FIFO waits against {!md1_mean_wait} to within a few
    percent), and M/M/1 for exponential service as a further reference. *)

val mm1_mean_wait : lambda:float -> mu:float -> float
(** Mean waiting time (excluding service) in an M/M/1 queue,
    [rho / (mu - lambda)] with [rho = lambda / mu].  Requires
    [0 < lambda < mu]. *)

val mm1_mean_sojourn : lambda:float -> mu:float -> float
(** Mean time in system, [1 / (mu - lambda)]. *)

val md1_mean_wait : lambda:float -> service:float -> float
(** Mean waiting time in an M/D/1 queue (Pollaczek-Khinchine with zero
    service variance): [rho * s / (2 (1 - rho))] where [s] is the fixed
    service time and [rho = lambda * s < 1]. *)

val mg1_mean_wait : lambda:float -> mean_service:float -> var_service:float ->
  float
(** Full Pollaczek-Khinchine mean wait:
    [lambda * E(S^2) / (2 (1 - rho))]. *)

val utilization : lambda:float -> service:float -> float
(** Offered load [rho = lambda * service]. *)
