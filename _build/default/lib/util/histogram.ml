type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable overflow : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) || bins < 1 then invalid_arg "Histogram.create";
  { lo; hi; bins = Array.make bins 0; overflow = 0; total = 0 }

let add t x =
  t.total <- t.total + 1;
  if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let n = Array.length t.bins in
    let idx =
      int_of_float (float_of_int n *. (x -. t.lo) /. (t.hi -. t.lo))
    in
    let idx = Stdlib.max 0 (Stdlib.min (n - 1) idx) in
    t.bins.(idx) <- t.bins.(idx) + 1
  end

let of_values ~lo ~hi ~bins values =
  let t = create ~lo ~hi ~bins in
  Array.iter (add t) values;
  t

let count t = t.total
let overflow t = t.overflow

let bin_count t i =
  if i < 0 || i >= Array.length t.bins then invalid_arg "Histogram.bin_count";
  t.bins.(i)

let bin_bounds t i =
  if i < 0 || i >= Array.length t.bins then invalid_arg "Histogram.bin_bounds";
  let n = Array.length t.bins in
  let step = (t.hi -. t.lo) /. float_of_int n in
  (t.lo +. (step *. float_of_int i), t.lo +. (step *. float_of_int (i + 1)))

let render ?(width = 50) ?(unit_label = "") t =
  let peak =
    Array.fold_left Stdlib.max t.overflow t.bins |> Stdlib.max 1
  in
  let bar count = String.make (count * width / peak) '#' in
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i count ->
      let lo, hi = bin_bounds t i in
      Buffer.add_string buf
        (Printf.sprintf "%10.2f-%-10.2f %s |%s %d\n" lo hi unit_label
           (bar count) count))
    t.bins;
  Buffer.add_string buf
    (Printf.sprintf "%10s>=%-9.2f %s |%s %d\n" "" t.hi unit_label
       (bar t.overflow) t.overflow);
  Buffer.contents buf
