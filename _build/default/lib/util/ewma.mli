(** Exponentially weighted moving average.

    FIFO+ switches track the average queueing delay of each sharing class
    with an EWMA (Section 6 of the paper measures "the average delay seen by
    packets in each priority class at that switch").  The admission
    controller's conservative load estimators are also EWMA-based. *)

type t

val create : ?init:float -> gain:float -> unit -> t
(** [create ~gain ()] makes an average updated as
    [avg <- avg + gain * (x - avg)].  [gain] must lie in (0, 1].  Until the
    first observation the average reads as [init] (default [0.]). *)

val update : t -> float -> unit
(** Fold one observation into the average.  The first observation replaces
    the initial value entirely, so the estimate is unbiased at startup. *)

val value : t -> float
val count : t -> int
(** Number of observations folded in so far. *)
