type t = { gain : float; mutable avg : float; mutable n : int }

let create ?(init = 0.) ~gain () =
  assert (gain > 0. && gain <= 1.);
  { gain; avg = init; n = 0 }

let update t x =
  if t.n = 0 then t.avg <- x
  else t.avg <- t.avg +. (t.gain *. (x -. t.avg));
  t.n <- t.n + 1

let value t = t.avg
let count t = t.n
