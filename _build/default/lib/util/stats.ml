type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.min
let max t = t.max
let total t = t.total

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n
          /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
      total = a.total +. b.total;
    }
  end

let reset t =
  t.n <- 0;
  t.mean <- 0.;
  t.m2 <- 0.;
  t.min <- infinity;
  t.max <- neg_infinity;
  t.total <- 0.
