type t = { mutable data : float array; mutable len : int }

let create ?(capacity = 64) () =
  { data = Array.make (max 1 capacity) 0.; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0. in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Fvec.get";
  t.data.(i)

let to_array t = Array.sub t.data 0 t.len

let sorted_copy t =
  let a = to_array t in
  Array.sort compare a;
  a

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let clear t = t.len <- 0
