(** Units and constants of the paper's simulation setup (Appendix).

    All inter-switch links run at 1 Mbit/s, all packets are 1000 bits, all
    switch buffers hold 200 packets, and delays are reported in units of the
    per-packet transmission time (1 ms). *)

val link_rate_bps : float
(** 1 Mbit/s, the paper's inter-switch link bandwidth. *)

val packet_bits : int
(** 1000 bits, the paper's uniform packet size. *)

val buffer_packets : int
(** 200 packets of switch buffering per output link. *)

val sim_duration_s : float
(** 600 s — "simulations covering 10 minutes of simulated time". *)

val transmission_time : link_rate_bps:float -> packet_bits:int -> float
(** Seconds to serialize one packet. *)

val packet_times : link_rate_bps:float -> packet_bits:int -> float -> float
(** Convert a delay in seconds into per-packet transmission-time units (the
    unit of every delay number in the paper's tables). *)

val seconds_of_packet_times :
  link_rate_bps:float -> packet_bits:int -> float -> float
(** Inverse of {!packet_times}. *)
