(** Logging sources for the library.

    All subsystems log through {!Logs} under the [ispn.*] source names so an
    application can tune them individually; nothing is printed unless the
    host application installs a reporter ({!setup} installs a basic one —
    the CLI's [--debug] flag calls it). *)

val link : Logs.src
(** [ispn.link] — buffer drops and transmitter stalls (debug level). *)

val admission : Logs.src
(** [ispn.admission] — admit/reject decisions (info level). *)

val service : Logs.src
(** [ispn.service] — flow establishment and teardown (info level). *)

val setup : ?level:Logs.level -> unit -> unit
(** Install a [Format]-based stderr reporter at [level] (default
    [Logs.Info]) for every [ispn.*] source. *)
