let link_rate_bps = 1_000_000.
let packet_bits = 1000
let buffer_packets = 200
let sim_duration_s = 600.

let transmission_time ~link_rate_bps ~packet_bits =
  float_of_int packet_bits /. link_rate_bps

let packet_times ~link_rate_bps ~packet_bits seconds =
  seconds /. transmission_time ~link_rate_bps ~packet_bits

let seconds_of_packet_times ~link_rate_bps ~packet_bits units =
  units *. transmission_time ~link_rate_bps ~packet_bits
