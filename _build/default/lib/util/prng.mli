(** Deterministic pseudo-random number generation.

    All randomness in the simulator flows from a single 64-bit seed through
    instances of this SplitMix64 generator.  Each traffic source owns its own
    stream (obtained with {!split}), so adding or removing a source does not
    perturb the random sequence seen by the others — experiments are
    reproducible bit-for-bit. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator.  Equal seeds give equal
    sequences. *)

val split : t -> t
(** [split g] derives an independent child stream from [g], advancing [g].
    The child's sequence is uncorrelated with the parent's subsequent
    output. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float g] is uniform on [\[0, 1)] with 53 bits of precision. *)

val int : t -> bound:int -> int
(** [int g ~bound] is uniform on [\[0, bound)].  [bound] must be positive. *)

val bool : t -> bool
(** Fair coin flip. *)
