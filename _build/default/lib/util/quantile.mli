(** Exact quantiles over recorded samples.

    The paper reports 99.9'th percentile queueing delays; we compute them
    exactly from the full sample set (nearest-rank definition) rather than
    with a sketch, since a ten-minute run fits comfortably in memory. *)

val of_sorted : float array -> float -> float
(** [of_sorted a q] is the nearest-rank [q]-quantile of the ascending array
    [a], for [q] in [\[0, 1\]].  Raises [Invalid_argument] on an empty array
    or [q] outside the range. *)

val of_fvec : Fvec.t -> float -> float
(** Quantile of a sample vector (sorts a copy). *)

val percentile : Fvec.t -> float -> float
(** [percentile v p] with [p] in [\[0, 100\]]. *)

val median : Fvec.t -> float
