(** Fixed-bin histograms with ASCII rendering.

    Used by the CLI's verbose mode to show delay distributions — the
    play-back point discussion in Section 2.3 is really about the shape of
    this distribution, not a single number. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Values below [lo] land in the first bin, values at or above [hi] in an
    overflow bin.  Requires [lo < hi] and [bins >= 1]. *)

val of_values : lo:float -> hi:float -> bins:int -> float array -> t

val add : t -> float -> unit
val count : t -> int
val overflow : t -> int
(** Observations at or above [hi]. *)

val bin_count : t -> int -> int
(** Count in bin [i] (0-based).  Raises [Invalid_argument] out of range. *)

val bin_bounds : t -> int -> float * float

val render : ?width:int -> ?unit_label:string -> t -> string
(** Bar chart, one line per bin plus an overflow line, bars scaled to
    [width] (default 50) characters at the modal bin. *)
