lib/util/stats.ml: Stdlib
