lib/util/ewma.mli:
