lib/util/quantile.ml: Array Fvec Stdlib
