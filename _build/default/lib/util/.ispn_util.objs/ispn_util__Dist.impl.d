lib/util/dist.ml: Float Prng
