lib/util/units.mli:
