lib/util/ewma.ml:
