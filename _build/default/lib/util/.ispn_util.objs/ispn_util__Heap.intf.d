lib/util/heap.mli:
