lib/util/histogram.ml: Array Buffer Printf Stdlib String
