lib/util/units.ml:
