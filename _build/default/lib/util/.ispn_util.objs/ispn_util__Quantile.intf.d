lib/util/quantile.mli: Fvec
