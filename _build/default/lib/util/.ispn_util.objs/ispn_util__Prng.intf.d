lib/util/prng.mli:
