lib/util/stats.mli:
