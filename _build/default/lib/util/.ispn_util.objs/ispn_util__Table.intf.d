lib/util/table.mli:
