lib/util/dist.mli: Prng
