lib/util/fvec.mli:
