lib/util/analytic.mli:
