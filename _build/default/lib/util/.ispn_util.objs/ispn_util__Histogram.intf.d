lib/util/histogram.mli:
