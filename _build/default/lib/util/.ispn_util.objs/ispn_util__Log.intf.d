lib/util/log.mli: Logs
