lib/util/log.ml: List Logs
