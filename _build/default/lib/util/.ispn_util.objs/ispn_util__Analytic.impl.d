lib/util/analytic.ml:
