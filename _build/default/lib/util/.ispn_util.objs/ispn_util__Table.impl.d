lib/util/table.ml: Array List Printf Stdlib String
