(** Plain-text table rendering for experiment reports.

    The benchmark harness prints reproductions of the paper's Tables 1-3 in
    the same row/column layout; this module does the column sizing. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  rows:string list list ->
  unit ->
  string
(** [render ~header ~rows ()] lays the table out with two-space gutters and a
    dashed rule under the header.  [align] gives per-column alignment
    (default: first column left, the rest right); missing entries default to
    [Right].  Short rows are padded with empty cells. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting used for delay values (default 2 decimals). *)
