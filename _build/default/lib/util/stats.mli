(** Online summary statistics (Welford's algorithm).

    Used for per-flow and per-link delay accounting where only moments and
    extrema are needed; when exact percentiles are required, pair with
    {!Fvec} + {!Quantile}. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int
val mean : t -> float
(** Mean of the observations; [0.] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** Smallest observation; [infinity] when empty. *)

val max : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val total : t -> float
(** Sum of the observations. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator summarizing both inputs. *)

val reset : t -> unit
