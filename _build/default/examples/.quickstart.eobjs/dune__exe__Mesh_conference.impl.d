examples/mesh_conference.ml: Csz Engine Ispn_admission Ispn_sim Ispn_traffic Ispn_util Link List Option Printf
