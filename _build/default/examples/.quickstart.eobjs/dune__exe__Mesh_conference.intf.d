examples/mesh_conference.mli:
