examples/admission_control.ml: Csz Engine Ispn_admission Ispn_sim Ispn_traffic Ispn_util Link Printf
