examples/adaptive_audio.ml: Csz Engine Fun Ispn_admission Ispn_playback Ispn_sim Ispn_traffic Ispn_util List Packet Printf
