examples/admission_control.mli:
