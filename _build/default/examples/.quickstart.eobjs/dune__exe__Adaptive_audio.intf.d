examples/adaptive_audio.mli:
