examples/remote_surgery.mli:
