examples/quickstart.ml: Engine Ispn_sched Ispn_sim Ispn_traffic Ispn_util List Network Printf Probe Qdisc
