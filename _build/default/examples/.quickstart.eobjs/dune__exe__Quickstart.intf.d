examples/quickstart.mli:
