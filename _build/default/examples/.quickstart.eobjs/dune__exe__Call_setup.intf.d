examples/call_setup.mli:
