examples/call_setup.ml: Csz Engine Ispn_admission Ispn_sim Ispn_traffic Ispn_util Option Printf
