examples/remote_surgery.ml: Csz Engine Ispn_admission Ispn_sim Ispn_traffic Ispn_util Packet Printf Stdlib
