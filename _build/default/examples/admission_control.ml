(* Admission control in action (Section 9).

   Conference calls arrive one after another, each asking for predicted
   service with an 8 ms per-switch delay target.  The network admits them
   while its measured load and class delays leave room, and starts refusing
   when another flow would push the measured class delay over its target or
   eat into the 10% datagram quota.  When calls hang up, capacity frees and
   admissions resume.

   Run with: dune exec examples/admission_control.exe *)

open Ispn_sim
module Service = Csz.Service
module Spec = Ispn_admission.Spec

let () =
  let engine = Engine.create () in
  let svc = Service.create ~engine ~n_switches:2 () in
  Service.start svc;
  let prng = Ispn_util.Prng.create ~seed:3L in

  let call_request () =
    Spec.Predicted
      {
        bucket = Spec.bucket ~rate_pps:85. ~depth_packets:5. ();
        target_delay = 0.064;
        target_loss = 0.01;
      }
  in

  (* One call every 8 seconds, each lasting 4 minutes: the offered load
     (about 30 concurrent calls, 2.5x the link) far exceeds what the delay
     targets and the 10% datagram quota can carry. *)
  let next_flow = ref 0 in
  let log fmt = Printf.printf fmt in
  let rec place_call () =
    let flow = !next_flow in
    incr next_flow;
    (match
       Service.request svc ~flow ~ingress:0 ~egress:1 (call_request ())
         ~sink:(fun _ -> ())
     with
    | Ok est ->
        log "t=%4.0fs  call %2d ADMITTED (class %s); %d active\n"
          (Engine.now engine) flow
          (match est.Service.cls with
          | Some c -> string_of_int c
          | None -> "-")
          (Service.admitted svc);
        let source =
          Ispn_traffic.Onoff.create ~engine
            ~prng:(Ispn_util.Prng.split prng) ~flow ~avg_rate_pps:85.
            ~emit:est.Service.emit ()
        in
        source.Ispn_traffic.Source.start ();
        ignore
          (Engine.schedule_after engine ~delay:240. (fun () ->
               source.Ispn_traffic.Source.stop ();
               Service.teardown svc ~flow;
               log "t=%4.0fs  call %2d hung up; %d active\n"
                 (Engine.now engine) flow (Service.admitted svc)))
    | Error reason ->
        log "t=%4.0fs  call %2d REFUSED: %s\n" (Engine.now engine) flow
          reason);
    ignore (Engine.schedule_after engine ~delay:8. place_call)
  in
  place_call ();
  Engine.run engine ~until:600.;

  let link = Csz.Fabric.link (Service.fabric svc) 0 in
  Printf.printf
    "\nFinal: %d admissions active, %d requests refused over the run, link \
     %.1f%% utilized.\n"
    (Service.admitted svc) (Service.rejected svc)
    (100. *. Link.utilization link ~elapsed:600.);
  Printf.printf
    "Refusals are the mechanism that keeps the predicted-service delay \
     targets honest\nwhile still packing far more calls in than a worst-case \
     reservation would allow.\n"
