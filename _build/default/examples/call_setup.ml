(* Call setup over in-band signaling.

   The paper's fourth architectural component — how commitments get
   established — done the way a real network must do it: a setup message
   carrying the service request travels the path as an ordinary packet
   through each switch's datagram class, every hop runs the Section 9
   admission test and reserves before forwarding, the far end confirms,
   and a mid-path refusal unwinds the hops already reserved.

   Calls are placed across a loaded four-hop chain until the network says
   busy; then some hang up and dial tone comes back.

   Run with: dune exec examples/call_setup.exe *)

open Ispn_sim
module Signaling = Csz.Signaling
module Fabric = Csz.Fabric
module Spec = Ispn_admission.Spec

let () =
  let engine = Engine.create () in
  let fabric = Fabric.chain ~engine ~n_switches:5 () in
  let net = Signaling.deploy ~fabric () in
  let prng = Ispn_util.Prng.create ~seed:21L in

  (* Background data load so the control packets feel real queues. *)
  for link = 0 to 3 do
    Fabric.install_flow fabric ~flow:(800 + link) ~ingress:link
      ~egress:(link + 1)
      ~sink:(fun _ -> ());
    let src =
      Ispn_traffic.Onoff.create ~engine ~prng:(Ispn_util.Prng.split prng)
        ~flow:(800 + link) ~avg_rate_pps:400.
        ~emit:(fun p -> Fabric.inject fabric ~at_switch:link p)
        ()
    in
    src.Ispn_traffic.Source.start ()
  done;

  (* Place a 128 kbit/s guaranteed call end to end every 7 seconds; each
     call runs for 60 seconds then hangs up, so the offered load (about
     nine concurrent calls) exceeds what the 90% quota can hold. *)
  let next_call = ref 0 in
  let rec place_call () =
    let flow = !next_call in
    incr next_call;
    let dialled = Engine.now engine in
    Signaling.setup net ~flow ~ingress:0 ~egress:4
      ~own_bucket:(Spec.bucket ~rate_pps:128. ~depth_packets:10. ())
      (Spec.Guaranteed { clock_rate_bps = 128_000. })
      ~sink:(fun _ -> ())
      ~on_result:(fun result ->
        match result with
        | Ok est ->
            Printf.printf
              "t=%5.1fs  call %2d CONNECTED after %5.1f ms (bound %.0f ms)\n"
              (Engine.now engine) flow
              (1000. *. est.Signaling.setup_time)
              (1000. *. Option.get est.Signaling.advertised_bound);
            let voice =
              Ispn_traffic.Onoff.create ~engine
                ~prng:(Ispn_util.Prng.split prng) ~flow ~avg_rate_pps:64.
                ~peak_rate_pps:128. ~emit:est.Signaling.emit ()
            in
            voice.Ispn_traffic.Source.start ();
            ignore
              (Engine.schedule_after engine ~delay:60. (fun () ->
                   voice.Ispn_traffic.Source.stop ();
                   Signaling.teardown net ~flow;
                   Printf.printf "t=%5.1fs  call %2d hung up\n"
                     (Engine.now engine) flow))
        | Error reason ->
            Printf.printf "t=%5.1fs  call %2d BUSY (%s; dialled %.1fs ago)\n"
              (Engine.now engine) flow reason
              (Engine.now engine -. dialled));
    if Engine.now engine +. 7. < 300. then
      ignore (Engine.schedule_after engine ~delay:7. place_call)
  in
  place_call ();
  Engine.run engine ~until:300.;

  Printf.printf
    "\n%d calls connected, %d heard the busy signal; %d control packets \
     crossed the wire.\n"
    (Signaling.established_count net)
    (Signaling.refused_count net)
    (Signaling.control_packets_sent net);
  Printf.printf
    "Admission happened hop by hop, in band, with rollback on refusal —\n\
     the establishment mechanism the paper left as future work.\n"
