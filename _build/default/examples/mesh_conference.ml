(* The CSZ architecture beyond the chain: a routed mesh.

   Figure 1 is a straight line, but nothing in the architecture needs that.
   Here a small ISP mesh connects four sites; every output link runs the
   unified scheduler, shortest-path routing picks flow paths, and the
   service layer does per-link admission along whatever path routing
   chooses.

        S1 ------ S2
         \       /  \
          \     /    S4
           \   /    /
            S3 ----/

   A three-way video conference pins guaranteed service between the sites;
   bursty predicted-service data shares the links; a datagram backup job
   soaks up the rest.

   Run with: dune exec examples/mesh_conference.exe *)

open Ispn_sim
module Fabric = Csz.Fabric
module Service = Csz.Service
module Spec = Ispn_admission.Spec

let () =
  let engine = Engine.create () in
  (* Duplex mesh: each undirected edge is two directed CSZ-scheduled links. *)
  let edges = [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ] in
  let links = edges @ List.map (fun (a, b) -> (b, a)) edges in
  let fabric = Fabric.topology ~engine ~n_switches:4 ~links () in
  let svc = Service.create_on ~fabric () in
  Service.start svc;
  let prng = Ispn_util.Prng.create ~seed:11L in

  let flows = ref [] in
  let establish ~flow ~ingress ~egress spec label rate =
    match Service.request svc ~flow ~ingress ~egress spec ~sink:(fun _ -> ()) with
    | Ok est ->
        let path = Option.get (Fabric.path fabric ~ingress ~egress) in
        Printf.printf "%-28s S%d -> S%d over %d link(s)%s\n" label
          (ingress + 1) (egress + 1) (List.length path)
          (match est.Service.advertised_bound with
          | Some b -> Printf.sprintf ", bound %.0f ms" (1000. *. b)
          | None -> "");
        let source =
          Ispn_traffic.Onoff.create ~engine ~prng:(Ispn_util.Prng.split prng)
            ~flow ~avg_rate_pps:rate ~emit:est.Service.emit ()
        in
        source.Ispn_traffic.Source.start ();
        flows := (label, flow) :: !flows
    | Error reason -> Printf.printf "%-28s REFUSED: %s\n" label reason
  in

  (* The conference: three guaranteed legs at 128 kbit/s each. *)
  List.iteri
    (fun i (a, b) ->
      establish ~flow:i ~ingress:a ~egress:b
        (Spec.Guaranteed { clock_rate_bps = 256_000. })
        (Printf.sprintf "video leg %d (guaranteed)" (i + 1))
        128.)
    [ (0, 3); (3, 0); (1, 2) ];

  (* Predicted-service data between the remaining site pairs. *)
  List.iteri
    (fun i (a, b) ->
      establish ~flow:(10 + i) ~ingress:a ~egress:b
        (Spec.Predicted
           {
             bucket = Spec.bucket ~rate_pps:100. ~depth_packets:20. ();
             target_delay = 0.13;
             target_loss = 0.01;
           })
        (Printf.sprintf "telemetry %d (predicted)" (i + 1))
        100.)
    [ (0, 3); (2, 1); (3, 2) ];

  (* Datagram backup traffic: no promises, takes what is left. *)
  establish ~flow:20 ~ingress:0 ~egress:3 Spec.Datagram "backup (datagram)" 300.;

  Engine.run engine ~until:120.;

  Printf.printf "\nPer-link load after 120 s:\n";
  for i = 0 to Fabric.n_links fabric - 1 do
    let l = Fabric.link fabric i in
    if Link.sent l > 0 then
      Printf.printf "  %-10s %5.1f%% utilized, %6d packets, reserved %3.0f%%\n"
        (Link.name l)
        (100. *. Link.utilization l ~elapsed:120.)
        (Link.sent l)
        (100.
        *. Csz.Csz_sched.guaranteed_reserved_bps (Fabric.sched fabric ~link:i)
        /. 1e6)
  done;
  Printf.printf
    "\n%d flows admitted, %d refused.  Same scheduler, same admission rule,\n\
     arbitrary topology: the architecture is the mechanism, not the chain.\n"
    (Service.admitted svc) (Service.rejected svc)
