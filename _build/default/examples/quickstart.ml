(* Quickstart: build a two-switch network, run ten bursty flows through it
   under FIFO and under WFQ, and print each flow's queueing delays — the
   paper's Table-1 experiment in about forty lines.

   Run with: dune exec examples/quickstart.exe *)

open Ispn_sim

let run_once sched_name make_qdisc =
  let engine = Engine.create () in
  let prng = Ispn_util.Prng.create ~seed:1L in
  (* A chain of two switches = one shared 1 Mbit/s link. *)
  let net =
    Network.chain ~engine ~n_switches:2 ~rate_bps:1_000_000.
      ~qdisc_of:(fun _ -> make_qdisc ())
      ()
  in
  (* Ten identical on/off sources (A = 85 pkt/s, peak 170), each policed by
     the paper's (A, 50-packet) token bucket, each measured by a probe. *)
  let probes =
    List.init 10 (fun flow ->
        let probe = Probe.create () in
        Network.install_flow net ~flow ~ingress:0 ~egress:1
          ~sink:(fun pkt -> Probe.sink probe ~engine pkt);
        let bucket =
          Ispn_traffic.Token_bucket.create ~rate_bps:85_000.
            ~depth_bits:50_000. ()
        in
        let policer =
          Ispn_traffic.Token_bucket.policer ~engine ~bucket
            ~mode:Ispn_traffic.Token_bucket.Drop
            ~next:(fun pkt -> Network.inject net ~at_switch:0 pkt)
        in
        let source =
          Ispn_traffic.Onoff.create ~engine
            ~prng:(Ispn_util.Prng.split prng) ~flow ~avg_rate_pps:85.
            ~emit:(Ispn_traffic.Token_bucket.admit_fn policer)
            ()
        in
        source.Ispn_traffic.Source.start ();
        (flow, probe))
  in
  Engine.run engine ~until:120.;
  Printf.printf "%s  (link %.1f%% utilized)\n" sched_name
    (100. *. Network.utilization net ~link:0 ~elapsed:120.);
  List.iter
    (fun (flow, probe) ->
      Printf.printf "  flow %d: mean %5.2f   99.9%%ile %6.2f   (packet times)\n"
        flow (Probe.mean_qdelay probe)
        (Probe.percentile_qdelay probe 99.9))
    probes;
  print_newline ()

let () =
  let pool () = Qdisc.pool ~capacity:200 in
  run_once "FIFO — bursts are shared, everyone's tail stays moderate"
    (fun () -> Ispn_sched.Fifo.create ~pool:(pool ()) ());
  run_once "WFQ — bursts are charged to the burster, tails are larger"
    (fun () ->
      Ispn_sched.Wfq.create_equal ~pool:(pool ()) ~link_rate_bps:1_000_000. ())
