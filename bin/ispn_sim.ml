(* Command-line driver: rerun any of the paper's experiments (and the
   extensions) with custom durations, seeds and rates. *)

open Cmdliner

let duration =
  let doc = "Simulated duration in seconds (the paper uses 600)." in
  Arg.(value & opt float 600. & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc)

let seed =
  let doc = "PRNG seed; equal seeds reproduce runs bit-for-bit." in
  Arg.(value & opt int64 42L & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let avg_rate =
  let doc = "Per-flow average packet rate A (packets/second)." in
  Arg.(value & opt float 85. & info [ "a"; "avg-rate" ] ~docv:"PPS" ~doc)

let jobs =
  let doc =
    "Domains to fan independent simulation runs over (Ispn_exec.Pool). \
     Results are bit-identical for any value; defaults to the host's \
     recommended domain count."
  in
  let positive =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n when n > 0 -> Ok n
      | Ok _ -> Error (`Msg "expected a positive integer")
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(
    value
    & opt positive (Ispn_exec.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let verbose =
  let doc = "Also print per-flow statistics." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let debug =
  let doc =
    "Log admission decisions, flow establishment and buffer drops to stderr."
  in
  Arg.(value & flag & info [ "debug" ] ~doc)

let with_logging debug f = begin
    if debug then Ispn_util.Log.setup ~level:Logs.Debug ();
    f
  end

let metrics_arg =
  let doc =
    "Print deterministic [obs] footer lines (engine counters, per-link \
     drops/pool/wait) and write the full metrics snapshots to $(docv) — \
     CSV if it ends in .csv, JSON otherwise.  Snapshots are merged in \
     canonical job order, so the file is byte-identical for every -j."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

(* Shared tail for the table commands: footer to stdout, snapshots to the
   requested file. *)
let finish_metrics file labeled =
  if labeled <> [] then print_string (Csz.Report.obs_footer labeled);
  match file with
  | None -> ()
  | Some path ->
      Ispn_obs.Metrics.write_file path labeled;
      Printf.eprintf "wrote %s\n%!" path

let series_arg =
  let doc =
    "Sample every instrument once per simulated second and write the \
     labeled timelines, plus per-channel delay-histogram percentiles, to \
     $(docv) — CSV if it ends in .csv, JSON otherwise.  Sampling is keyed \
     by sim time and exports merge in canonical job order, so the file is \
     byte-identical for every -j; default stdout is unchanged."
  in
  Arg.(value & opt (some string) None & info [ "series" ] ~docv:"FILE" ~doc)

(* Per-run observability bundle shared by --metrics and --series: the
   series samples the same registry the metrics snapshot reads, and the
   histograms register their percentile instruments on it, so a combined
   run gets hist lines in its [obs] footers for free. *)
type job_obs = {
  jo_metrics : Ispn_obs.Metrics.t option;
  jo_series : Ispn_obs.Series.t option;
  jo_hist : Ispn_obs.Hist.t option;
}

let job_obs ~metrics ~series =
  if metrics <> None || series <> None then begin
    let m = Ispn_obs.Metrics.create () in
    if series <> None then
      { jo_metrics = Some m;
        jo_series = Some (Ispn_obs.Series.create ~metrics:m ());
        jo_hist = Some (Ispn_obs.Hist.create ~metrics:m ()) }
    else { jo_metrics = Some m; jo_series = None; jo_hist = None }
  end
  else { jo_metrics = None; jo_series = None; jo_hist = None }

let obs_snapshot ~metrics ~label jo =
  if metrics <> None then
    Option.map (fun m -> (label, Ispn_obs.Metrics.snapshot m)) jo.jo_metrics
  else None

let series_export ~label jo =
  Option.map
    (fun s -> (label, Ispn_obs.Series.export ?hist:jo.jo_hist s))
    jo.jo_series

let finish_series file labeled =
  match file with
  | None -> ()
  | Some path ->
      Ispn_obs.Series.write_file path labeled;
      Printf.eprintf "wrote %s\n%!" path

let check_arg =
  let doc =
    "Attach the $(b,ispn_check) conformance auditor to every link (packet \
     conservation, pool accounting, work-conservation, delay monotonicity, \
     token-bucket conformance, PG bounds) and print deterministic [check] \
     footer lines.  Exits 1 if any invariant is violated.  Stdout is \
     byte-identical to a run without the flag, minus the footers, and \
     -j-independent with it."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let audit_ctx check = if check then Some (Ispn_check.Audit.create ()) else None

let audit_summary ~label a =
  Option.map (fun a -> (label, Ispn_check.Audit.finalize a)) a

(* Print the [check] footers in canonical job order; exit 1 on violations. *)
let finish_check labeled =
  let violations =
    List.fold_left
      (fun acc (label, s) ->
        List.iter print_endline (Ispn_check.Audit.footer_lines ~label s);
        acc + s.Ispn_check.Audit.violations)
      0 labeled
  in
  if violations > 0 then begin
    Printf.eprintf "--check found %d invariant violation(s)\n%!" violations;
    exit 1
  end

let print_info (info : Csz.Experiment.run_info) =
  Printf.printf "\nLinks at ";
  Array.iteri
    (fun i u -> Printf.printf "%sL%d %.1f%%" (if i = 0 then "" else ", ") (i + 1) (100. *. u))
    info.Csz.Experiment.utilization;
  Printf.printf "; %d offered, %d source-dropped (%.2f%%), %d buffer drops\n"
    info.Csz.Experiment.offered info.Csz.Experiment.source_dropped
    (100.
    *. float_of_int info.Csz.Experiment.source_dropped
    /. float_of_int (max 1 info.Csz.Experiment.offered))
    info.Csz.Experiment.net_dropped

let table1_cmd =
  let run duration seed avg_rate verbose j metrics series check =
    let runs =
      Ispn_exec.Pool.map ~j
        (fun sched ->
          let jo = job_obs ~metrics ~series in
          let a = audit_ctx check in
          let results, info =
            Csz.Experiment.run_single_link ~sched ~avg_rate_pps:avg_rate
              ~duration ~seed ?metrics:jo.jo_metrics ?series:jo.jo_series
              ?hist:jo.jo_hist ?audit:a ()
          in
          let label = "table1." ^ Csz.Experiment.sched_name sched in
          ( sched, results, info, obs_snapshot ~metrics ~label jo,
            audit_summary ~label a, series_export ~label jo ))
        [ Csz.Experiment.Wfq; Csz.Experiment.Fifo ]
    in
    print_endline
      (Csz.Report.table1
         (List.map (fun (s, r, i, _, _, _) -> (s, r, i)) runs)
         ~sample_flow:0);
    if verbose then
      List.iter
        (fun (sched, results, info, _, _, _) ->
          Printf.printf "\n%s per-flow:\n%s\n"
            (Csz.Experiment.sched_name sched)
            (Csz.Report.flow_results results);
          print_info info)
        runs;
    finish_metrics metrics
      (List.filter_map (fun (_, _, _, s, _, _) -> s) runs);
    finish_series series (List.filter_map (fun (_, _, _, _, _, e) -> e) runs);
    finish_check (List.filter_map (fun (_, _, _, _, c, _) -> c) runs)
  in
  let doc = "Reproduce Table 1: WFQ vs FIFO on a single shared link." in
  Cmd.v (Cmd.info "table1" ~doc)
    Term.(
      const run $ duration $ seed $ avg_rate $ verbose $ jobs $ metrics_arg
      $ series_arg $ check_arg)

let table2_cmd =
  let run duration seed avg_rate verbose j metrics series check =
    let runs =
      Ispn_exec.Pool.map ~j
        (fun sched ->
          let jo = job_obs ~metrics ~series in
          let a = audit_ctx check in
          let r =
            Csz.Experiment.run_figure1 ~sched ~avg_rate_pps:avg_rate ~duration
              ~seed ?metrics:jo.jo_metrics ?series:jo.jo_series
              ?hist:jo.jo_hist ?audit:a ()
          in
          let label = "table2." ^ Csz.Experiment.sched_name sched in
          ( sched, r, obs_snapshot ~metrics ~label jo, audit_summary ~label a,
            series_export ~label jo ))
        [ Csz.Experiment.Wfq; Csz.Experiment.Fifo; Csz.Experiment.Fifo_plus ]
    in
    let table_runs = List.map (fun (s, (r, _), _, _, _) -> (s, r)) runs in
    print_endline (Csz.Report.table2 table_runs ~sample_flows:[ 18; 8; 2; 0 ]);
    if verbose then
      List.iter
        (fun (sched, (results, info), _, _, _) ->
          Printf.printf "\n%s per-flow:\n%s\n"
            (Csz.Experiment.sched_name sched)
            (Csz.Report.flow_results results);
          print_info info)
        runs;
    finish_metrics metrics (List.filter_map (fun (_, _, s, _, _) -> s) runs);
    finish_series series (List.filter_map (fun (_, _, _, _, e) -> e) runs);
    finish_check (List.filter_map (fun (_, _, _, c, _) -> c) runs)
  in
  let doc =
    "Reproduce Table 2: WFQ vs FIFO vs FIFO+ on the Figure-1 multihop chain."
  in
  Cmd.v (Cmd.info "table2" ~doc)
    Term.(
      const run $ duration $ seed $ avg_rate $ verbose $ jobs $ metrics_arg
      $ series_arg $ check_arg)

let table3_cmd =
  let run duration seed avg_rate verbose debug metrics series check =
    with_logging debug ();
    let jo = job_obs ~metrics ~series in
    let a = audit_ctx check in
    let res =
      Csz.Experiment.run_table3 ~avg_rate_pps:avg_rate ~duration ~seed
        ?metrics:jo.jo_metrics ?series:jo.jo_series ?hist:jo.jo_hist
        ?audit:a ()
    in
    print_endline (Csz.Report.table3 res);
    if verbose then begin
      Printf.printf "\nAll real-time flows:\n%s\n"
        (Csz.Report.flow_results res.Csz.Experiment.all_flows);
      print_info res.Csz.Experiment.info
    end;
    finish_metrics metrics
      (Option.to_list (obs_snapshot ~metrics ~label:"table3" jo));
    finish_series series
      (Option.to_list (series_export ~label:"table3" jo));
    finish_check (Option.to_list (audit_summary ~label:"table3" a))
  in
  let doc = "Reproduce Table 3: the unified CSZ scheduling algorithm." in
  Cmd.v (Cmd.info "table3" ~doc)
    Term.(
      const run $ duration $ seed $ avg_rate $ verbose $ debug $ metrics_arg
      $ series_arg $ check_arg)

let topology_cmd =
  let run () = print_string (Csz.Report.figure1 ()) in
  let doc = "Print the Figure-1 topology and flow layout." in
  Cmd.v (Cmd.info "topology" ~doc) Term.(const run $ const ())

let bakeoff_cmd =
  let run duration seed j check =
    let runs = Csz.Extensions.run_bakeoff ~duration ~seed ~j ~check () in
    let f2 = Ispn_util.Table.fmt_float ~decimals:2 in
    let f0 = Ispn_util.Table.fmt_float ~decimals:0 in
    let pt =
      Ispn_util.Units.packet_times ~link_rate_bps:Ispn_util.Units.link_rate_bps
        ~packet_bits:Ispn_util.Units.packet_bits
    in
    let rows =
      List.map
        (fun (row : Csz.Extensions.bakeoff_row) ->
          Csz.Extensions.bakeoff_name row.Csz.Extensions.bk_sched
          :: List.concat_map
               (fun flow ->
                 let r =
                   List.find
                     (fun (fr : Csz.Experiment.flow_result) ->
                       fr.Csz.Experiment.flow = flow)
                     row.Csz.Extensions.bk_results
                 in
                 let stat v =
                   if r.Csz.Experiment.received = 0 then "-" else f2 v
                 in
                 let bound =
                   match row.Csz.Extensions.bk_bounds with
                   | None -> "-"
                   | Some bs -> f0 (pt (List.assoc flow bs))
                 in
                 [
                   stat r.Csz.Experiment.mean; stat r.Csz.Experiment.p999;
                   bound;
                 ])
               [ 18; 8; 2; 0 ])
        runs
    in
    print_endline
      (Ispn_util.Table.render
         ~header:
           [
             "scheduler"; "mean@1"; "p999@1"; "bound@1"; "mean@2"; "p999@2";
             "bound@2"; "mean@3"; "p999@3"; "bound@3"; "mean@4"; "p999@4";
             "bound@4";
           ]
         ~rows ());
    finish_check
      (List.filter_map
         (fun (row : Csz.Extensions.bakeoff_row) ->
           Option.map
             (fun s ->
               ( "bakeoff."
                 ^ Csz.Extensions.bakeoff_name row.Csz.Extensions.bk_sched,
                 s ))
             row.Csz.Extensions.bk_check)
         runs)
  in
  let doc =
    "E1: related-work scheduler bake-off (VirtualClock, EDF, DRR, WRR, \
     MC-FIFO, CBS, ATS, RR-groups, ...) on the Table-2 workload, with \
     analytic per-hop delay-bound columns for the shapers; --check audits \
     every delivered packet against its registered bound."
  in
  Cmd.v
    (Cmd.info "bakeoff" ~doc)
    Term.(const run $ duration $ seed $ jobs $ check_arg)

let admission_cmd =
  let run duration seed debug j =
    with_logging debug ();
    List.iter
      (fun (r : Csz.Extensions.admission_result) ->
        Printf.printf
          "%-24s requests %3d, accepted %3d, utilization %5.1f%%, target \
           violations %5.2f%%, buffer drops %5.2f%%\n"
          (Csz.Extensions.policy_name r.Csz.Extensions.policy)
          r.Csz.Extensions.requests r.Csz.Extensions.accepted
          (100. *. r.Csz.Extensions.mean_utilization)
          (100. *. r.Csz.Extensions.violation_rate)
          (100. *. r.Csz.Extensions.net_drop_rate))
      (Csz.Extensions.run_admission ~duration ~seed ~j ())
  in
  let doc = "E2: admission-control policies under dynamic flow arrivals." in
  Cmd.v (Cmd.info "admission" ~doc)
    Term.(const run $ duration $ seed $ debug $ jobs)

let playback_cmd =
  let run duration seed =
    List.iter
      (fun (r : Csz.Extensions.playback_result) ->
        Printf.printf
          "%-10s mean play-back point %6.2f packet times, application loss \
           %.3f%%\n"
          r.Csz.Extensions.client r.Csz.Extensions.mean_point
          (100. *. r.Csz.Extensions.app_loss_rate))
      (Csz.Extensions.run_playback ~duration ~seed ())
  in
  let doc = "E3: adaptive vs rigid play-back clients on the 4-hop flow." in
  Cmd.v (Cmd.info "playback" ~doc) Term.(const run $ duration $ seed)

let cascade_cmd =
  let run duration seed =
    List.iter
      (fun (r : Csz.Extensions.cascade_row) ->
        Printf.printf "%-10s per-hop mean %6.2f, 99.9%%ile %8.2f\n"
          r.Csz.Extensions.cascade_class r.Csz.Extensions.c_mean
          r.Csz.Extensions.c_p999)
      (Csz.Extensions.run_cascade ~duration ~seed ())
  in
  let doc = "E6: jitter shifting down the priority-class ladder." in
  Cmd.v (Cmd.info "cascade" ~doc) Term.(const run $ duration $ seed)

let isolation_cmd =
  let run duration seed =
    List.iter
      (fun (r : Csz.Extensions.isolation_row) ->
        Printf.printf
          "%-28s honest: mean %6.2f p999 %8.2f | cheater: mean %8.2f p999 \
           %8.2f\n"
          r.Csz.Extensions.iso_sched r.Csz.Extensions.honest_mean
          r.Csz.Extensions.honest_p999 r.Csz.Extensions.cheat_mean
          r.Csz.Extensions.cheat_p999)
      (Csz.Extensions.run_isolation ~duration ~seed ())
  in
  let doc = "E4: a misbehaving source under FIFO, WFQ and edge policing." in
  Cmd.v (Cmd.info "isolation" ~doc) Term.(const run $ duration $ seed)

let discard_cmd =
  let run duration seed =
    List.iter
      (fun (r : Csz.Extensions.discard_result) ->
        Printf.printf
          "threshold %-8s 4-hop p999 %7.2f, discarded %.3f%% of packets\n"
          (match r.Csz.Extensions.threshold with
          | None -> "off"
          | Some t -> Printf.sprintf "%.0f ms" (1000. *. t))
          r.Csz.Extensions.p999_4hop
          (100. *. r.Csz.Extensions.discarded_fraction))
      (Csz.Extensions.run_discard ~duration ~seed ())
  in
  let doc = "E5: Section 10 late-packet discard via the FIFO+ offset." in
  Cmd.v (Cmd.info "discard" ~doc) Term.(const run $ duration $ seed)

let ablation_cmd =
  let run duration seed j =
    List.iter
      (fun (gain, (r : Csz.Experiment.flow_result)) ->
        Printf.printf "gain 1/%-6.0f 4-hop mean %5.2f, p999 %6.2f\n"
          (1. /. gain) r.Csz.Experiment.mean r.Csz.Experiment.p999)
      (Csz.Extensions.run_gain_ablation ~duration ~seed ~j ())
  in
  let doc = "Ablation: FIFO+ class-average gain vs multi-hop jitter." in
  Cmd.v (Cmd.info "ablation" ~doc) Term.(const run $ duration $ seed $ jobs)

let service_cmd =
  let run duration seed =
    let r = Csz.Extensions.run_table3_service ~duration ~seed () in
    List.iter
      (fun (row : Csz.Extensions.e2e_row) ->
        Printf.printf "flow %2d %-20s %d hop(s) -> %s\n"
          row.Csz.Extensions.e2e_flow row.Csz.Extensions.e2e_label
          row.Csz.Extensions.e2e_hops row.Csz.Extensions.e2e_outcome)
      r.Csz.Extensions.e2e_rows;
    Printf.printf
      "admitted %d, utilization %.1f%%, target violations %.2f%%\n"
      r.Csz.Extensions.e2e_admitted
      (100. *. r.Csz.Extensions.e2e_utilization)
      (100. *. r.Csz.Extensions.e2e_violations)
  in
  let doc =
    "E7: offer the Table-3 population to the full service stack (admission + \
     policing + scheduling) instead of hand-placing it."
  in
  Cmd.v (Cmd.info "service" ~doc) Term.(const run $ duration $ seed)

let sweep_cmd =
  let run duration seed j =
    List.iter
      (fun (r : Csz.Extensions.sweep_row) ->
        Printf.printf
          "utilization %5.1f%%  FIFO 99.9%%ile %6.2f  WFQ 99.9%%ile %6.2f\n"
          (100. *. r.Csz.Extensions.achieved_utilization)
          r.Csz.Extensions.fifo_p999 r.Csz.Extensions.wfq_p999)
      (Csz.Extensions.run_load_sweep ~duration ~seed ~j ())
  in
  let doc = "E8: sharing's tail advantage as a function of load." in
  Cmd.v (Cmd.info "sweep" ~doc) Term.(const run $ duration $ seed $ jobs)

let signaling_cmd =
  let run duration seed =
    List.iter
      (fun (r : Csz.Extensions.signaling_row) ->
        Printf.printf
          "background load %3.0f%%: %3d setups, mean %6.2f ms, max %7.2f ms\n"
          (100. *. r.Csz.Extensions.sig_load)
          r.Csz.Extensions.sig_setups r.Csz.Extensions.sig_mean_ms
          r.Csz.Extensions.sig_max_ms)
      (Csz.Extensions.run_signaling ~duration ~seed ())
  in
  let doc = "E9: in-band hop-by-hop establishment latency vs load." in
  Cmd.v (Cmd.info "signaling" ~doc) Term.(const run $ duration $ seed)

let faults_cmd =
  let run duration seed j series =
    let rows =
      Csz.Extensions.run_failover ~duration ~seed ~j
        ?series_interval:(Option.map (fun _ -> 1.0) series)
        ()
    in
    List.iter
      (fun (r : Csz.Extensions.failover_row) ->
        Printf.printf
          "%-12s violations %5.2f%%  lost %6d  retries %3d (abandoned %d)  \
           reestablished %d in %4.1f ms  degraded %d\n"
          (Csz.Extensions.failover_name r.Csz.Extensions.fo_schedule)
          (100. *. r.Csz.Extensions.fo_violation_rate)
          r.Csz.Extensions.fo_lost r.Csz.Extensions.fo_retries
          r.Csz.Extensions.fo_abandoned r.Csz.Extensions.fo_reestablished
          r.Csz.Extensions.fo_reestablish_ms r.Csz.Extensions.fo_degraded;
        List.iter
          (fun (f : Csz.Extensions.failover_flow) ->
            Printf.printf "    flow %d: requested %s, ended %s\n"
              f.Csz.Extensions.ff_flow f.Csz.Extensions.ff_requested
              f.Csz.Extensions.ff_final)
          r.Csz.Extensions.fo_flows)
      rows;
    finish_series series
      (List.filter_map
         (fun (r : Csz.Extensions.failover_row) ->
           Option.map
             (fun e ->
               ( "faults."
                 ^ Csz.Extensions.failover_name r.Csz.Extensions.fo_schedule,
                 e ))
             r.Csz.Extensions.fo_series)
         rows)
  in
  let doc =
    "E11: inject link outages, header corruption and agent crashes; watch \
     setup retries, re-establishment and the guaranteed -> predicted -> \
     datagram degradation ladder."
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(const run $ duration $ seed $ jobs $ series_arg)

let churn_cmd =
  let run duration seed j check series =
    let rows =
      Csz.Extensions.run_churn ~duration ~seed ~j ~check
        ?series_interval:(Option.map (fun _ -> 1.0) series)
        ()
    in
    List.iter
      (fun (r : Csz.Extensions.churn_row) ->
        Printf.printf
          "%-15s sessions %6d  blocking %5.2f%%  departed %6d (active %4d)  \
           signaling %6.1f pkt/s (refresh %4.1f%%)  retries %4d  expired \
           %4d  recycled %6d (hwm %4d)  leaked %d\n"
          (Csz.Extensions.churn_name r.Csz.Extensions.ch_scenario)
          r.Csz.Extensions.ch_offered
          (100. *. r.Csz.Extensions.ch_blocking)
          r.Csz.Extensions.ch_departed r.Csz.Extensions.ch_active_end
          r.Csz.Extensions.ch_signaling_pps
          (100. *. r.Csz.Extensions.ch_refresh_share)
          r.Csz.Extensions.ch_retries r.Csz.Extensions.ch_expired
          r.Csz.Extensions.ch_recycled r.Csz.Extensions.ch_slot_hwm
          r.Csz.Extensions.ch_leaked)
      rows;
    Printf.printf "cumulative sessions across scenarios: %d\n"
      (List.fold_left
         (fun acc (r : Csz.Extensions.churn_row) ->
           acc + r.Csz.Extensions.ch_offered)
         0 rows);
    finish_series series
      (List.filter_map
         (fun (r : Csz.Extensions.churn_row) ->
           Option.map
             (fun e ->
               ( "churn."
                 ^ Csz.Extensions.churn_name r.Csz.Extensions.ch_scenario,
                 e ))
             r.Csz.Extensions.ch_series)
         rows);
    finish_check
      (List.filter_map
         (fun (r : Csz.Extensions.churn_row) ->
           Option.map
             (fun s ->
               ( "churn."
                 ^ Csz.Extensions.churn_name r.Csz.Extensions.ch_scenario,
                 s ))
             r.Csz.Extensions.ch_check)
         rows)
  in
  let doc =
    "E13: open-loop session churn through the soft-state signaling layer — \
     RSVP-style refresh/timeout recovering lost teardowns, agent crashes \
     and link outages, with leak-free flow-id recycling."
  in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(const run $ duration $ seed $ jobs $ check_arg $ series_arg)

let scale_cmd =
  let shards =
    let doc =
      "Domains to shard the one simulation over (conservative lock-step \
       windows, Ispn_sim.Shardnet).  The result table is byte-identical \
       for every width; only wall time and the stderr diagnostics change."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)
  in
  let fast =
    let doc = "60 s of simulated time instead of --duration." in
    Arg.(value & flag & info [ "fast" ] ~doc)
  in
  let run duration seed shards fast check metrics series =
    let duration = if fast then 60. else duration in
    let r =
      try
        Csz.Extensions.run_scale ~duration ~seed ~shards ~check
          ~metrics:(metrics <> None)
          ?series_interval:(if series <> None then Some 1.0 else None)
          ()
      with Invalid_argument msg ->
        Printf.eprintf "ispn_sim: %s\n" msg;
        exit 2
    in
    Printf.printf
      "%d switches, %d links, %d on/off flows over %.0f s (delays in packet \
       times)\n"
      r.Csz.Extensions.sc_switches r.Csz.Extensions.sc_links
      r.Csz.Extensions.sc_flow_count duration;
    List.iter
      (fun (row : Csz.Extensions.scale_row) ->
        Printf.printf
          "regions crossed %d  flows %5d  delivered %9d  mean %8.1f  \
           max %8.1f  queueing %6.2f\n"
          row.Csz.Extensions.sc_span row.Csz.Extensions.sc_flows
          row.Csz.Extensions.sc_delivered row.Csz.Extensions.sc_mean_delay
          row.Csz.Extensions.sc_max_delay row.Csz.Extensions.sc_mean_qdelay)
      r.Csz.Extensions.sc_rows;
    Printf.printf
      "total: delivered %d, sent %d link transmissions, dropped %d\n"
      r.Csz.Extensions.sc_delivered_total r.Csz.Extensions.sc_sent
      r.Csz.Extensions.sc_dropped;
    Printf.eprintf
      "[scale: %d shard(s), %d cut link(s), lookahead %.2f ms, %d windows, \
       %d packets exchanged, %d events fired]\n%!"
      r.Csz.Extensions.sc_shards r.Csz.Extensions.sc_cut_links
      (1e3 *. r.Csz.Extensions.sc_lookahead)
      r.Csz.Extensions.sc_windows r.Csz.Extensions.sc_exchanged
      r.Csz.Extensions.sc_fired;
    (match r.Csz.Extensions.sc_metrics with
    | None -> ()
    | Some snap -> finish_metrics metrics [ ("scale", snap) ]);
    (match r.Csz.Extensions.sc_series with
    | None -> ()
    | Some se -> finish_series series [ ("scale", se) ]);
    finish_check
      (match r.Csz.Extensions.sc_check with
      | None -> []
      | Some s -> [ ("scale", s) ])
  in
  let doc =
    "E14: one large parking-lot simulation (20 switches, thousands of \
     on/off flows) sharded across OCaml 5 domains with conservative \
     lock-step windows — same table, metrics and series at every --shards \
     width."
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      const run $ duration $ seed $ shards $ fast $ check_arg $ metrics_arg
      $ series_arg)

let importance_cmd =
  let run duration seed =
    List.iter
      (fun (r : Csz.Extensions.importance_row) ->
        Printf.printf "%-16s received %6d   mean %6.2f   99.9%%ile %7.2f\n"
          r.Csz.Extensions.imp_label r.Csz.Extensions.imp_received
          r.Csz.Extensions.imp_mean r.Csz.Extensions.imp_p999)
      (Csz.Extensions.run_importance ~duration ~seed ())
  in
  let doc =
    "E10: one application's important vs less-important packets in adjacent \
     priority classes."
  in
  Cmd.v (Cmd.info "importance" ~doc) Term.(const run $ duration $ seed)

let profile_cmd =
  let run duration seed avg_rate =
    (* Record the Appendix's on/off process and characterize it: the b(r)
       curve and the clock rate a guaranteed client should request. *)
    let engine = Ispn_sim.Engine.create () in
    let profile = Ispn_traffic.Profile.create () in
    let source =
      Ispn_traffic.Onoff.create ~engine
        ~prng:(Ispn_util.Prng.create ~seed)
        ~flow:0 ~avg_rate_pps:avg_rate
        ~emit:(fun pkt ->
          Ispn_traffic.Profile.record profile
            ~time:(Ispn_sim.Engine.now engine)
            ~bits:(Ispn_sim.Packet.size_bits pkt);
          Ispn_sim.Packet.free pkt)
        ()
    in
    source.Ispn_traffic.Source.start ();
    Ispn_sim.Engine.run engine ~until:duration;
    Printf.printf
      "Recorded %d packets over %.0f s: mean %.0f bit/s, peak %.0f bit/s\n\n"
      (Ispn_traffic.Profile.packets profile)
      duration
      (Ispn_traffic.Profile.mean_rate_bps profile)
      (Ispn_traffic.Profile.peak_rate_bps profile);
    print_endline "b(r), the minimal token-bucket depth at clock rate r:";
    let mean = Ispn_traffic.Profile.mean_rate_bps profile in
    List.iter
      (fun mult ->
        let r = mean *. mult in
        let b = Ispn_traffic.Profile.min_depth_bits profile ~rate_bps:r in
        let bound1 = Ispn_traffic.Profile.delay_bound profile ~rate_bps:r ~hops:1 in
        Printf.printf
          "  r = %.2f x mean = %7.0f bit/s   b(r) = %6.0f bits (%.0f pkts)  \
           1-hop bound %.1f ms\n"
          mult r b (b /. 1000.) (1000. *. bound1))
      [ 1.02; 1.1; 1.25; 1.5; 1.75; 2.0 ];
    print_newline ();
    List.iter
      (fun target ->
        match
          Ispn_traffic.Profile.clock_rate_for_delay profile ~target ~hops:4 ()
        with
        | Some r ->
            Printf.printf
              "For a %.0f ms bound over 4 hops, request clock rate %.0f \
               bit/s (%.2f x mean)\n"
              (1000. *. target) r (r /. mean)
        | None ->
            Printf.printf
              "A %.0f ms bound over 4 hops is infeasible for this source\n"
              (1000. *. target))
      [ 0.6; 0.2; 0.05 ]
  in
  let doc =
    "Characterize an on/off source: its b(r) curve and the guaranteed-service \
     clock rate needed for a target delay bound (Section 4's client-side \
     computation)."
  in
  Cmd.v (Cmd.info "profile" ~doc) Term.(const run $ duration $ seed $ avg_rate)

let backlog_cmd =
  let run duration seed avg_rate =
    (* The Table-1 single link, instrumented for queue depth instead of
       delay: how close does the paper's 200-packet buffer come to full? *)
    let engine = Ispn_sim.Engine.create () in
    let prng = Ispn_util.Prng.create ~seed in
    let pool = Ispn_sim.Qdisc.pool ~capacity:Ispn_util.Units.buffer_packets in
    let net =
      Ispn_sim.Network.chain ~engine ~n_switches:2 ~rate_bps:1e6
        ~qdisc_of:(fun _ -> Ispn_sched.Fifo.create ~pool ())
        ()
    in
    for flow = 0 to 9 do
      Ispn_sim.Network.install_flow net ~flow ~ingress:0 ~egress:1
        ~sink:(fun _ -> ());
      let bucket =
        Ispn_traffic.Token_bucket.create
          ~rate_bps:(avg_rate *. 1000.)
          ~depth_bits:50_000. ()
      in
      let policer =
        Ispn_traffic.Token_bucket.policer ~engine ~bucket
          ~mode:Ispn_traffic.Token_bucket.Drop
          ~next:(fun pkt -> Ispn_sim.Network.inject net ~at_switch:0 pkt)
      in
      let source =
        Ispn_traffic.Onoff.create ~engine ~prng:(Ispn_util.Prng.split prng)
          ~flow ~avg_rate_pps:avg_rate
          ~emit:(Ispn_traffic.Token_bucket.admit_fn policer)
          ()
      in
      source.Ispn_traffic.Source.start ()
    done;
    let watcher =
      Ispn_sim.Backlog.watch ~engine ~link:(Ispn_sim.Network.link net 0) ()
    in
    Ispn_sim.Engine.run engine ~until:duration;
    Printf.printf
      "Queue depth over %.0f s at %.1f%% load: mean %.1f, 99.9%%ile %.0f, max        %.0f of %d packets\n\n"
      duration
      (100. *. Ispn_sim.Network.utilization net ~link:0 ~elapsed:duration)
      (Ispn_sim.Backlog.mean watcher)
      (Ispn_sim.Backlog.percentile watcher 99.9)
      (Ispn_sim.Backlog.max watcher)
      Ispn_util.Units.buffer_packets;
    print_string
      (Ispn_util.Histogram.render ~unit_label:"pkts"
         (Ispn_sim.Backlog.histogram ~bins:16 watcher))
  in
  let doc =
    "Sample the single-link queue depth: how close the 200-packet buffer \
     comes to overflow at the Appendix's load."
  in
  Cmd.v (Cmd.info "backlog" ~doc) Term.(const run $ duration $ seed $ avg_rate)

let trace_cmd =
  let experiment =
    let doc =
      "Experiment to record: $(b,table1) (single FIFO link), $(b,table2) \
       (FIFO+ Figure-1 chain) or $(b,table3) (unified CSZ scheduler)."
    in
    Arg.(
      value
      & pos 0
          (Arg.enum
             [
               ("table1", Csz.Extensions.T_table1);
               ("table2", Csz.Extensions.T_table2);
               ("table3", Csz.Extensions.T_table3);
             ])
          Csz.Extensions.T_table2
      & info [] ~docv:"EXPERIMENT" ~doc)
  in
  let worst =
    let doc = "Number of worst-delay packets to break down." in
    Arg.(value & opt int 5 & info [ "worst" ] ~docv:"N" ~doc)
  in
  let events =
    let doc =
      "Flight-recorder ring capacity in events; the ring keeps the newest."
    in
    Arg.(
      value & opt int (1 lsl 20) & info [ "events"; "trace-cap" ] ~docv:"N" ~doc)
  in
  let dump =
    let doc =
      "Also write the surviving ring (oldest event first) to $(docv) as CSV \
       with one typed column per event field — \
       time,kind,link,flow,seq,cls,offset,value,cause."
    in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FILE" ~doc)
  in
  let fast =
    let doc = "Simulate 60 s regardless of --duration (CI smoke)." in
    Arg.(value & flag & info [ "fast" ] ~doc)
  in
  let run duration seed experiment worst events fast dump =
    let duration = if fast then 60. else duration in
    (* Build the ring here when --dump asks for it, so its contents survive
       the run for export; run_trace attaches whichever ring it gets. *)
    let recorder =
      Option.map
        (fun _ -> Ispn_obs.Recorder.create ~capacity:events ())
        dump
    in
    let res =
      Csz.Extensions.run_trace ~experiment ~worst ~capacity:events ?recorder
        ~duration ~seed ()
    in
    print_string (Csz.Report.trace res);
    match (dump, recorder) with
    | Some path, Some r ->
        Ispn_obs.Recorder.write_csv path r;
        Printf.eprintf "wrote %s\n%!" path
    | _ -> ()
  in
  let doc =
    "E12: run an experiment with the flight recorder attached and print the \
     worst packets' per-hop delay decomposition (queueing + transmission per \
     link, summing to the end-to-end delay the probe saw)."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ duration $ seed $ experiment $ worst $ events $ fast $ dump)

let default =
  let doc =
    "Reproduction of Clark, Shenker & Zhang, \"Supporting Real-Time \
     Applications in an Integrated Services Packet Network\" (SIGCOMM 1992)."
  in
  Cmd.group
    (Cmd.info "ispn_sim" ~version:"1.0.0" ~doc)
    [
      table1_cmd; table2_cmd; table3_cmd; topology_cmd; bakeoff_cmd;
      admission_cmd; playback_cmd; cascade_cmd; isolation_cmd; discard_cmd;
      ablation_cmd; service_cmd; sweep_cmd; signaling_cmd; faults_cmd;
      churn_cmd; scale_cmd;
      importance_cmd; profile_cmd; backlog_cmd; trace_cmd;
    ]

let () = exit (Cmd.eval default)
